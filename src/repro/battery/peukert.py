"""Peukert's-law battery model — the classic empirical baseline.

Used by early battery-aware work (the paper cites Luo & Jha [7] as
building on Peukert's law).  For a constant discharge current ``I`` the
lifetime is

    L = a / I^b          (b >= 1, the Peukert exponent)

which we generalize to variable loads in the standard way: the battery
has an *effective capacity budget* ``a`` drained at the rate ``I(t)^b``
— death at the first ``L`` with ``∫_0^L I(t)^b dt = a``.  Peukert
captures the rate-capacity effect (guideline 1's "smaller currents
deliver more charge") but has *no recovery effect*, which is precisely
why the kinetic/diffusion models supersede it; the contrast is used by
the model-coherence benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import BatteryError
from .base import BatteryModel
from .kernels import PeriodKernel

__all__ = ["PeukertBattery", "PeukertPeriodKernel"]


@dataclass(frozen=True)
class _PeukertState:
    spent: float  # ∫ I^b dt so far, in A^b * s


class PeukertBattery(BatteryModel):
    """Peukert's law with the effective-current extension.

    Parameters
    ----------
    capacity:
        Charge delivered under the reference current ``i_ref``
        (coulombs).  The Peukert constant is
        ``a = capacity * i_ref^(b-1)``.
    exponent:
        Peukert exponent ``b`` (1 = ideal battery; NiMH cells are
        typically 1.1-1.3).
    i_ref:
        Reference current at which ``capacity`` is specified (amperes).
    """

    def __init__(
        self, capacity: float, exponent: float = 1.2, i_ref: float = 1.0
    ) -> None:
        if not (capacity > 0):
            raise BatteryError(f"capacity must be > 0, got {capacity}")
        if not (exponent >= 1):
            raise BatteryError(f"exponent must be >= 1, got {exponent}")
        if not (i_ref > 0):
            raise BatteryError(f"i_ref must be > 0, got {i_ref}")
        self.capacity = float(capacity)
        self.exponent = float(exponent)
        self.i_ref = float(i_ref)
        self._a = capacity * i_ref ** (exponent - 1.0)

    # ------------------------------------------------------------------
    def fresh_state(self) -> _PeukertState:
        return _PeukertState(0.0)

    def theoretical_capacity(self) -> float:
        """Charge under infinitesimal load diverges for b > 1; report the
        reference-rate capacity instead (Peukert has no finite maximum)."""
        return self.capacity

    def advance(
        self, state: _PeukertState, current: float, dt: float
    ) -> Tuple[_PeukertState, Optional[float]]:
        if dt < 0:
            raise BatteryError(f"dt must be >= 0, got {dt}")
        if state.spent >= self._a:
            return state, 0.0
        if dt == 0 or current <= 0:
            return _PeukertState(state.spent), None
        rate = current**self.exponent
        spent_end = state.spent + rate * dt
        if spent_end < self._a:
            return _PeukertState(spent_end), None
        death = (self._a - state.spent) / rate
        return _PeukertState(self._a), death

    def constant_lifetime(self, current: float) -> float:
        """Closed-form lifetime ``a / I^b`` for a constant current."""
        if current <= 0:
            raise BatteryError(f"current must be > 0, got {current}")
        return self._a / current**self.exponent

    def period_kernel(
        self, durations: np.ndarray, currents: np.ndarray
    ) -> "PeukertPeriodKernel":
        return PeukertPeriodKernel(self, durations, currents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PeukertBattery(capacity={self.capacity:.6g}C@"
            f"{self.i_ref:.3g}A, b={self.exponent:.3g})"
        )


class PeukertPeriodKernel(PeriodKernel):
    """Fully closed-form period map for Peukert's law.

    The state is one number (the effective-capacity spend
    ``∫ I^b dt``), draining by a fixed amount per period; tiling is
    plain arithmetic and a pass dies exactly when its end spend
    reaches the Peukert constant (the spend is non-decreasing, so the
    end check is complete).
    """

    def __init__(
        self,
        model: PeukertBattery,
        durations: np.ndarray,
        currents: np.ndarray,
    ) -> None:
        super().__init__(model, durations, currents)
        self._exponent = model.exponent
        self._a = model._a
        rates = np.where(currents > 0, currents, 0.0) ** model.exponent
        self._cum_spend = np.cumsum(rates * durations)
        self._spend_per_cycle = float(self._cum_spend[-1])

    def _rescale_loads(self, multiplier: float) -> None:
        scale = multiplier**self._exponent
        self._cum_spend = self._cum_spend * scale
        self._spend_per_cycle = self._spend_per_cycle * scale

    def state_after_cycles(self, k: int) -> _PeukertState:
        return _PeukertState(k * self._spend_per_cycle)

    def pass_dies(self, state: _PeukertState) -> bool:
        return state.spent + self._spend_per_cycle >= self._a

    def pass_end_state(self, state: _PeukertState) -> _PeukertState:
        return _PeukertState(state.spent + self._spend_per_cycle)

    def death_cycle_upper_hint(self) -> Optional[int]:
        if self._spend_per_cycle <= 0:
            return None
        return int(self._a / self._spend_per_cycle) + 3

    def death_segment_candidate(self, state: _PeukertState) -> int:
        j = int(
            np.searchsorted(
                self._cum_spend, self._a - state.spent, side="left"
            )
        )
        return min(j, self._cum_spend.size - 1)

    def pass_prefix_state(self, state: _PeukertState, j: int) -> _PeukertState:
        if j == 0:
            return state
        return _PeukertState(state.spent + float(self._cum_spend[j - 1]))

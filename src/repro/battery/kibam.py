"""Kinetic Battery Model (KiBaM) — Manwell & McGowan, paper ref [8].

The two-well picture of §3: total charge splits into an *available*
well (fraction ``c`` of capacity, width ``c``) feeding the load
directly and a *bound* well (width ``1 - c``) that replenishes the
available well at a rate proportional to the difference of the well
*heights*:

    dy1/dt = -I(t) + k_flow * (h2 - h1),      h1 = y1 / c
    dy2/dt =        - k_flow * (h2 - h1),      h2 = y2 / (1 - c)

The battery is exhausted when the available well empties (y1 = 0) even
though charge may remain bound — exactly the "discharged state" of the
paper's Figure 2(d), and the mechanism behind both the rate-capacity
and recovery effects.

For a constant current ``I`` the system is linear and has the classic
closed form (with ``kp = k_flow / (c * (1 - c))`` the effective rate
constant):

    y1(t) = y1_0 e^{-kp t} + (y0 kp c - I)(1 - e^{-kp t})/kp
            - I c (kp t - 1 + e^{-kp t})/kp
    y2(t) = y2_0 e^{-kp t} + y0 (1-c)(1 - e^{-kp t})
            - I (1-c)(kp t - 1 + e^{-kp t})/kp

with ``y0 = y1_0 + y2_0``.  Charge conservation ``y1 + y2 = y0 - I t``
holds identically (property-tested).  Death times inside a segment are
found by bracketed root-finding on the analytic ``y1(t)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from scipy.optimize import brentq

from ..errors import BatteryError
from .base import BatteryModel

__all__ = ["KiBaM", "KiBaMState"]


@dataclass(frozen=True)
class KiBaMState:
    """Charge in the available (y1) and bound (y2) wells, in coulombs."""

    y1: float
    y2: float

    @property
    def total(self) -> float:
        return self.y1 + self.y2


class KiBaM(BatteryModel):
    """Kinetic Battery Model with exact piecewise-constant propagation.

    Parameters
    ----------
    capacity:
        Total charge ``y0`` when fully charged, in coulombs
        (2000 mAh = 7200 C for the paper's AAA NiMH cell).
    c:
        Fraction of capacity in the available well (0 < c < 1).
    kp:
        Effective rate constant ``k'`` in 1/s; larger means faster
        charge migration between wells (an ideal battery is the limit
        ``kp -> inf``).
    """

    def __init__(self, capacity: float, c: float, kp: float) -> None:
        if not (capacity > 0):
            raise BatteryError(f"capacity must be > 0, got {capacity}")
        if not (0 < c < 1):
            raise BatteryError(f"c must be in (0, 1), got {c}")
        if not (kp > 0):
            raise BatteryError(f"kp must be > 0, got {kp}")
        self.capacity = float(capacity)
        self.c = float(c)
        self.kp = float(kp)

    # ------------------------------------------------------------------
    def fresh_state(self) -> KiBaMState:
        return KiBaMState(self.c * self.capacity, (1 - self.c) * self.capacity)

    def theoretical_capacity(self) -> float:
        return self.capacity

    def available_capacity(self) -> float:
        """Charge deliverable under an infinite load (the available well)."""
        return self.c * self.capacity

    # ------------------------------------------------------------------
    def _y1_at(self, state: KiBaMState, current: float, t: float) -> float:
        """Analytic available charge after ``t`` seconds at ``current``."""
        kp, c = self.kp, self.c
        y0 = state.y1 + state.y2
        e = math.exp(-kp * t)
        return (
            state.y1 * e
            + (y0 * kp * c - current) * (1 - e) / kp
            - current * c * (kp * t - 1 + e) / kp
        )

    def _y2_at(self, state: KiBaMState, current: float, t: float) -> float:
        kp, c = self.kp, self.c
        y0 = state.y1 + state.y2
        e = math.exp(-kp * t)
        return (
            state.y2 * e
            + y0 * (1 - c) * (1 - e)
            - current * (1 - c) * (kp * t - 1 + e) / kp
        )

    def state_at(
        self, state: KiBaMState, current: float, t: float
    ) -> KiBaMState:
        """Propagate the wells through ``t`` seconds at ``current`` amps.

        Pure analytic evaluation, no death check — prefer
        :meth:`advance` unless you know the battery survives.
        """
        if t < 0:
            raise BatteryError(f"t must be >= 0, got {t}")
        return KiBaMState(
            self._y1_at(state, current, t), self._y2_at(state, current, t)
        )

    def advance(
        self, state: KiBaMState, current: float, dt: float
    ) -> Tuple[KiBaMState, Optional[float]]:
        if dt < 0:
            raise BatteryError(f"dt must be >= 0, got {dt}")
        if state.y1 <= 0:
            return state, 0.0
        if dt == 0:
            return state, None
        death = self._first_death(state, current, dt)
        if death is None:
            return self.state_at(state, current, dt), None
        dead = KiBaMState(0.0, self._y2_at(state, current, death))
        return dead, death

    def _first_death(
        self, state: KiBaMState, current: float, dt: float
    ) -> Optional[float]:
        """Earliest t in (0, dt] with y1(t) <= 0, or None.

        Under constant current the well-height difference relaxes
        exponentially toward a steady value, which makes dy1/dt
        monotone in t; y1 therefore has at most one interior extremum
        and — when that extremum exists — it is a *maximum* (recovery
        first, then decline).  Consequently y1 can never dip through
        zero and come back: a positive endpoint value proves the
        battery survived the whole segment, and a non-positive endpoint
        guarantees exactly one crossing, which brentq brackets.
        """
        if current <= 0:
            # Recovery only: y1 is non-decreasing, no death possible.
            return None
        f = lambda t: self._y1_at(state, current, t)
        if f(dt) > 0:
            return None
        # Bracket the unique first crossing with a forward scan (the
        # crossing may be early in a long segment, where brentq on the
        # full interval would already converge, but the scan keeps the
        # bracket tight and cheap).
        lo = 0.0
        hi = dt
        n = 16
        for j in range(1, n + 1):
            t = dt * j / n
            if f(t) <= 0:
                hi = t
                break
            lo = t
        if f(lo) <= 0:  # state.y1 == 0 boundary
            return lo
        return float(brentq(f, lo, hi, xtol=1e-12, rtol=8.9e-16))

    # ------------------------------------------------------------------
    def steady_state_current(self) -> float:
        """Largest constant current sustainable until total exhaustion.

        Below this current the available well never empties before the
        bound well does; the battery then delivers (almost) its full
        theoretical capacity.  Derived from the well balance
        ``I = k_flow * h2_max = kp * c * (1 - c) * capacity / (1 - c)``
        evaluated at full bound well — a useful scale for rate-capacity
        sweeps.
        """
        return self.kp * self.c * self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KiBaM(capacity={self.capacity:.6g}C, c={self.c:.4g}, "
            f"kp={self.kp:.4g}/s)"
        )

"""Kinetic Battery Model (KiBaM) — Manwell & McGowan, paper ref [8].

The two-well picture of §3: total charge splits into an *available*
well (fraction ``c`` of capacity, width ``c``) feeding the load
directly and a *bound* well (width ``1 - c``) that replenishes the
available well at a rate proportional to the difference of the well
*heights*:

    dy1/dt = -I(t) + k_flow * (h2 - h1),      h1 = y1 / c
    dy2/dt =        - k_flow * (h2 - h1),      h2 = y2 / (1 - c)

The battery is exhausted when the available well empties (y1 = 0) even
though charge may remain bound — exactly the "discharged state" of the
paper's Figure 2(d), and the mechanism behind both the rate-capacity
and recovery effects.

For a constant current ``I`` the system is linear and has the classic
closed form (with ``kp = k_flow / (c * (1 - c))`` the effective rate
constant):

    y1(t) = y1_0 e^{-kp t} + (y0 kp c - I)(1 - e^{-kp t})/kp
            - I c (kp t - 1 + e^{-kp t})/kp
    y2(t) = y2_0 e^{-kp t} + y0 (1-c)(1 - e^{-kp t})
            - I (1-c)(kp t - 1 + e^{-kp t})/kp

with ``y0 = y1_0 + y2_0``.  Charge conservation ``y1 + y2 = y0 - I t``
holds identically (property-tested).  Death times inside a segment are
found by bracketed root-finding on the analytic ``y1(t)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import brentq

from ..errors import BatteryError
from .base import BatteryModel
from .kernels import (
    PeriodKernel,
    _affine_matrix_power,
    affine_prefix_matrix,
)

__all__ = ["KiBaM", "KiBaMState", "KiBaMPeriodKernel"]


@dataclass(frozen=True)
class KiBaMState:
    """Charge in the available (y1) and bound (y2) wells, in coulombs."""

    y1: float
    y2: float

    @property
    def total(self) -> float:
        return self.y1 + self.y2


class KiBaM(BatteryModel):
    """Kinetic Battery Model with exact piecewise-constant propagation.

    Parameters
    ----------
    capacity:
        Total charge ``y0`` when fully charged, in coulombs
        (2000 mAh = 7200 C for the paper's AAA NiMH cell).
    c:
        Fraction of capacity in the available well (0 < c < 1).
    kp:
        Effective rate constant ``k'`` in 1/s; larger means faster
        charge migration between wells (an ideal battery is the limit
        ``kp -> inf``).
    """

    def __init__(self, capacity: float, c: float, kp: float) -> None:
        if not (capacity > 0):
            raise BatteryError(f"capacity must be > 0, got {capacity}")
        if not (0 < c < 1):
            raise BatteryError(f"c must be in (0, 1), got {c}")
        if not (kp > 0):
            raise BatteryError(f"kp must be > 0, got {kp}")
        self.capacity = float(capacity)
        self.c = float(c)
        self.kp = float(kp)

    # ------------------------------------------------------------------
    def fresh_state(self) -> KiBaMState:
        return KiBaMState(self.c * self.capacity, (1 - self.c) * self.capacity)

    def theoretical_capacity(self) -> float:
        return self.capacity

    def available_capacity(self) -> float:
        """Charge deliverable under an infinite load (the available well)."""
        return self.c * self.capacity

    # ------------------------------------------------------------------
    def _y1_at(self, state: KiBaMState, current: float, t: float) -> float:
        """Analytic available charge after ``t`` seconds at ``current``."""
        kp, c = self.kp, self.c
        y0 = state.y1 + state.y2
        e = math.exp(-kp * t)
        return (
            state.y1 * e
            + (y0 * kp * c - current) * (1 - e) / kp
            - current * c * (kp * t - 1 + e) / kp
        )

    def _y2_at(self, state: KiBaMState, current: float, t: float) -> float:
        kp, c = self.kp, self.c
        y0 = state.y1 + state.y2
        e = math.exp(-kp * t)
        return (
            state.y2 * e
            + y0 * (1 - c) * (1 - e)
            - current * (1 - c) * (kp * t - 1 + e) / kp
        )

    def state_at(
        self, state: KiBaMState, current: float, t: float
    ) -> KiBaMState:
        """Propagate the wells through ``t`` seconds at ``current`` amps.

        Pure analytic evaluation, no death check — prefer
        :meth:`advance` unless you know the battery survives.
        """
        if t < 0:
            raise BatteryError(f"t must be >= 0, got {t}")
        return KiBaMState(
            self._y1_at(state, current, t), self._y2_at(state, current, t)
        )

    def advance(
        self, state: KiBaMState, current: float, dt: float
    ) -> Tuple[KiBaMState, Optional[float]]:
        if dt < 0:
            raise BatteryError(f"dt must be >= 0, got {dt}")
        if state.y1 <= 0:
            return state, 0.0
        if dt == 0:
            return state, None
        death = self._first_death(state, current, dt)
        if death is None:
            return self.state_at(state, current, dt), None
        dead = KiBaMState(0.0, self._y2_at(state, current, death))
        return dead, death

    def _first_death(
        self, state: KiBaMState, current: float, dt: float
    ) -> Optional[float]:
        """Earliest t in (0, dt] with y1(t) <= 0, or None.

        Under constant current the well-height difference relaxes
        exponentially toward a steady value, which makes dy1/dt
        monotone in t; y1 therefore has at most one interior extremum
        and — when that extremum exists — it is a *maximum* (recovery
        first, then decline).  Consequently y1 can never dip through
        zero and come back: a positive endpoint value proves the
        battery survived the whole segment, and a non-positive endpoint
        guarantees exactly one crossing, which brentq brackets.
        """
        if current <= 0:
            # Recovery only: y1 is non-decreasing, no death possible.
            return None
        f = lambda t: self._y1_at(state, current, t)
        if f(dt) > 0:
            return None
        # Bracket the unique first crossing with a forward scan (the
        # crossing may be early in a long segment, where brentq on the
        # full interval would already converge, but the scan keeps the
        # bracket tight and cheap).
        lo = 0.0
        hi = dt
        n = 16
        for j in range(1, n + 1):
            t = dt * j / n
            if f(t) <= 0:
                hi = t
                break
            lo = t
        if f(lo) <= 0:  # state.y1 == 0 boundary
            return lo
        return float(brentq(f, lo, hi, xtol=1e-12, rtol=8.9e-16))

    # ------------------------------------------------------------------
    def period_kernel(
        self, durations: np.ndarray, currents: np.ndarray
    ) -> "KiBaMPeriodKernel":
        return KiBaMPeriodKernel(self, durations, currents)

    # ------------------------------------------------------------------
    def steady_state_current(self) -> float:
        """Largest constant current sustainable until total exhaustion.

        Below this current the available well never empties before the
        bound well does; the battery then delivers (almost) its full
        theoretical capacity.  Derived from the well balance
        ``I = k_flow * h2_max = kp * c * (1 - c) * capacity / (1 - c)``
        evaluated at full bound well — a useful scale for rate-capacity
        sweeps.
        """
        return self.kp * self.c * self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KiBaM(capacity={self.capacity:.6g}C, c={self.c:.4g}, "
            f"kp={self.kp:.4g}/s)"
        )


class KiBaMPeriodKernel(PeriodKernel):
    """Closed-form whole-period map for the kinetic battery model.

    The classic constant-current solution is affine in the well vector
    ``(y1, y2)``: each segment is ``y -> M_j y + v_j`` with a 2×2
    matrix depending only on the segment duration and a load vector
    linear in the current.  A matrix prefix scan yields the well
    levels at every segment boundary of a pass in one batched matmul,
    and the period map is powered in log time by repeated squaring.
    Boundary checks suffice for death detection: under constant
    current ``y1`` has at most one interior extremum and it is a
    *maximum* (see :meth:`KiBaM._first_death`), so ``y1`` cannot dip
    through zero between two positive boundary values.
    """

    def __init__(
        self,
        model: KiBaM,
        durations: np.ndarray,
        currents: np.ndarray,
    ) -> None:
        super().__init__(model, durations, currents)
        kp, c = model.kp, model.c
        n = durations.size
        e = np.exp(-kp * durations)
        g = (kp * durations - 1.0 + e) / kp
        mats = np.empty((n, 2, 2))
        mats[:, 0, 0] = e + c * (1.0 - e)
        mats[:, 0, 1] = c * (1.0 - e)
        mats[:, 1, 0] = (1.0 - c) * (1.0 - e)
        mats[:, 1, 1] = e + (1.0 - c) * (1.0 - e)
        loads = np.empty((n, 2))
        loads[:, 0] = -currents * ((1.0 - e) / kp + c * g)
        loads[:, 1] = -currents * (1.0 - c) * g
        a_pre, b_pre = affine_prefix_matrix(mats, loads)
        self._mat_to_end = a_pre  # (n, 2, 2): period start -> segment end
        self._load_to_end = b_pre
        self._mat_cycle = a_pre[-1]
        self._load_cycle = b_pre[-1]

    def _rescale_loads(self, multiplier: float) -> None:
        self._load_to_end = self._load_to_end * multiplier
        self._load_cycle = self._load_cycle * multiplier

    def state_after_cycles(self, k: int) -> KiBaMState:
        fresh = self.model.fresh_state()
        if k == 0:
            return fresh
        pk, qk = _affine_matrix_power(self._mat_cycle, self._load_cycle, k)
        y = pk @ np.array([fresh.y1, fresh.y2]) + qk
        return KiBaMState(float(y[0]), float(y[1]))

    def pass_dies(self, state: KiBaMState) -> bool:
        if state.y1 <= 0:
            return True
        y0 = np.array([state.y1, state.y2])
        y1_ends = self._mat_to_end[:, 0, :] @ y0 + self._load_to_end[:, 0]
        return bool(np.any(y1_ends <= 0.0))

    def pass_end_state(self, state: KiBaMState) -> KiBaMState:
        y = self._mat_cycle @ np.array([state.y1, state.y2]) + (
            self._load_cycle
        )
        return KiBaMState(float(y[0]), float(y[1]))

    def death_cycle_upper_hint(self) -> Optional[int]:
        # Charge conservation: y1 + y2 = capacity - k * Q, so the
        # available well is certainly empty once k * Q clears the total
        # capacity (margin for float dust).
        if self.charge_per_cycle <= 0:
            return None
        return int(self.model.capacity / self.charge_per_cycle) + 3

    def death_segment_candidate(self, state: KiBaMState) -> int:
        if state.y1 <= 0:
            return 0
        y0 = np.array([state.y1, state.y2])
        y1_ends = self._mat_to_end[:, 0, :] @ y0 + self._load_to_end[:, 0]
        hits = np.flatnonzero(y1_ends <= 0.0)
        return int(hits[0]) if hits.size else 0

    def pass_prefix_state(self, state: KiBaMState, j: int) -> KiBaMState:
        if j == 0:
            return state
        y0 = np.array([state.y1, state.y2])
        y = self._mat_to_end[j - 1] @ y0 + self._load_to_end[j - 1]
        return KiBaMState(float(y[0]), float(y[1]))

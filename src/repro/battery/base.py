"""Battery model interface.

All battery models in this package consume *piecewise-constant load
current profiles*: parallel arrays ``durations`` (seconds) and
``currents`` (amperes).  A model is a Markovian state machine —
:meth:`BatteryModel.fresh_state` produces the fully-charged state and
:meth:`BatteryModel.advance` propagates it through one constant-current
segment, reporting the in-segment death time if the battery gives out.

The uniform driver :meth:`BatteryModel.run_profile` handles profile
tiling (repeating a hyperperiod profile until death, the way the
paper's Table 2 extends a scheduler's profile to the battery's whole
life) and accumulates delivered charge.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from ..errors import BatteryError

__all__ = ["BatteryModel", "BatteryRun", "as_segments"]


def as_segments(
    durations: Sequence[float], currents: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and normalize a piecewise-constant profile.

    Zero-duration segments are dropped.  Currents must be >= 0 (this
    library models discharge only; charging is out of the paper's
    scope).
    """
    d = np.asarray(durations, dtype=float)
    i = np.asarray(currents, dtype=float)
    if d.ndim != 1 or i.ndim != 1 or d.shape != i.shape:
        raise BatteryError(
            f"durations/currents must be equal-length 1-D arrays, got "
            f"shapes {d.shape} and {i.shape}"
        )
    if d.size == 0:
        raise BatteryError("profile must contain at least one segment")
    if np.any(d < 0):
        raise BatteryError("segment durations must be >= 0")
    if np.any(i < 0):
        raise BatteryError("discharge currents must be >= 0")
    keep = d > 0
    if not np.any(keep):
        raise BatteryError("profile has zero total duration")
    return d[keep], i[keep]


@dataclass(frozen=True)
class BatteryRun:
    """Outcome of driving a battery model with a load profile.

    Attributes
    ----------
    died:
        Whether the battery reached its cutoff during the run.
    lifetime:
        Time of death (seconds) if ``died``, else the total simulated
        time.
    delivered_charge:
        Coulombs actually delivered to the load up to death or end.
    """

    died: bool
    lifetime: float
    delivered_charge: float

    @property
    def delivered_mah(self) -> float:
        """Delivered charge in milliamp-hours (the paper's unit)."""
        return self.delivered_charge / 3.6

    @property
    def lifetime_minutes(self) -> float:
        return self.lifetime / 60.0


class BatteryModel(abc.ABC):
    """Abstract base for charge-delivery battery models."""

    @abc.abstractmethod
    def fresh_state(self) -> Any:
        """The fully-charged internal state."""

    @abc.abstractmethod
    def advance(
        self, state: Any, current: float, dt: float
    ) -> Tuple[Any, Optional[float]]:
        """Propagate ``state`` through ``dt`` seconds at ``current`` amperes.

        Returns ``(new_state, death_offset)``; ``death_offset`` is the
        time into the segment at which the battery died (``None`` if it
        survived the whole segment).  After death, ``new_state`` is the
        state *at the moment of death* and must not be advanced further.
        """

    @abc.abstractmethod
    def theoretical_capacity(self) -> float:
        """Total stored charge in coulombs (the 'maximum capacity')."""

    # ------------------------------------------------------------------
    def period_kernel(self, durations, currents):
        """A precomputed fast whole-period propagator, or ``None``.

        Analytic models override this to return a
        :class:`~repro.battery.kernels.PeriodKernel` that advances one
        profile period as a closed-form affine map (and tiled cycles in
        log time).  Models whose semantics live in the per-step scalar
        path (e.g. the RNG-driven stochastic model, where draw order
        matters) keep the default ``None`` and the scalar driver.
        ``durations``/``currents`` must already be validated by
        :func:`as_segments`.
        """
        return None

    def advance_profile(
        self,
        state: Any,
        durations: Sequence[float],
        currents: Sequence[float],
    ) -> Tuple[Any, Optional[float]]:
        """Propagate ``state`` through one pass of a whole profile.

        Vectorized when the model provides a period kernel (one numpy
        expression per pass, no per-segment Python); otherwise the
        scalar per-segment loop.  Returns ``(new_state, death_time)``
        with ``death_time`` measured from the start of the profile
        (``None`` if the cell survives the pass).
        """
        d, i = as_segments(durations, currents)
        kernel = self.period_kernel(d, i)
        if kernel is not None:
            return kernel.advance_pass(state)
        t = 0.0
        for dt, cur in zip(d, i):
            state, death = self.advance(state, float(cur), float(dt))
            if death is not None:
                return state, t + death
            t += dt
        return state, None

    def run_profile(
        self,
        durations: Sequence[float],
        currents: Sequence[float],
        *,
        repeat: Optional[int] = 1,
        max_time: float = 1e7,
        fast: bool = True,
    ) -> BatteryRun:
        """Drive the model with a profile, optionally tiled.

        Parameters
        ----------
        durations, currents:
            The piecewise-constant profile of one period.
        repeat:
            Number of times to tile the profile; ``None`` repeats until
            the battery dies (or ``max_time`` elapses, which raises —
            an undying profile under ``repeat=None`` is almost always a
            calibration bug the caller should hear about).
        fast:
            Use the model's vectorized period kernel when it has one
            (results match the scalar path to float noise; see
            ``repro.battery.kernels``).  ``False`` forces the scalar
            per-segment reference path — benchmarks and the
            equivalence suite compare the two.
        """
        d, i = as_segments(durations, currents)
        if repeat is not None and repeat < 1:
            raise BatteryError(f"repeat must be >= 1 or None, got {repeat}")
        if fast:
            kernel = self.period_kernel(d, i)
            if kernel is not None:
                return kernel.run(repeat=repeat, max_time=max_time)
        return self._run_profile_scalar(d, i, repeat, max_time)

    def _run_profile_scalar(
        self,
        d: np.ndarray,
        i: np.ndarray,
        repeat: Optional[int],
        max_time: float,
        *,
        state: Any = None,
        t: float = 0.0,
        delivered: float = 0.0,
        cycle: int = 0,
    ) -> BatteryRun:
        """The universal per-segment reference driver (pre-validated).

        Resumable mid-run: a period kernel hands over ``state`` and the
        accumulated ``t``/``delivered``/``cycle`` when its vectorized
        predicate and the scalar walk disagree at a grazing threshold,
        landing at the cycle boundary exactly where this loop's checks
        would run next.
        """
        if state is None:
            state = self.fresh_state()
        while True:
            if cycle:
                if repeat is not None and cycle >= repeat:
                    return BatteryRun(
                        died=False, lifetime=t, delivered_charge=delivered
                    )
                if t > max_time:
                    raise BatteryError(
                        f"battery survived past max_time={max_time:.3g}s "
                        f"under repeat=None; the load is too light to ever "
                        f"exhaust it"
                    )
            for dt, cur in zip(d, i):
                state, death = self.advance(state, float(cur), float(dt))
                if death is not None:
                    return BatteryRun(
                        died=True,
                        lifetime=t + death,
                        delivered_charge=delivered + cur * death,
                    )
                t += dt
                delivered += cur * dt
            cycle += 1

    def lifetime_constant(
        self, current: float, *, max_time: float = 1e7
    ) -> BatteryRun:
        """Lifetime under a constant discharge current (rate-capacity
        probe)."""
        if current <= 0:
            raise BatteryError(
                f"constant-load lifetime needs current > 0, got {current}"
            )
        # Chunked advance: a single huge segment works for analytic models,
        # but chunking keeps step-based models accurate too.
        chunk = max(1.0, self.theoretical_capacity() / current / 200.0)
        state = self.fresh_state()
        t = 0.0
        while t < max_time:
            state, death = self.advance(state, current, chunk)
            if death is not None:
                t += death
                return BatteryRun(True, t, current * t)
            t += chunk
        raise BatteryError(
            f"battery survived constant load {current}A past "
            f"max_time={max_time:.3g}s"
        )

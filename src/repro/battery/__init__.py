"""Battery substrate: KiBaM, diffusion, stochastic, Peukert models plus
rate-capacity tooling and calibration to the paper's AAA NiMH cell."""

from .base import BatteryModel, BatteryRun, as_segments
from .calibrate import (
    PAPER_MAX_CAPACITY_C,
    PAPER_NOMINAL_CAPACITY_C,
    PAPER_NOMINAL_CURRENT_A,
    PAPER_WELL_SPLIT,
    calibrate_diffusion,
    calibrate_kibam,
    paper_cell_diffusion,
    paper_cell_kibam,
    paper_cell_stochastic,
)
from .diffusion import DiffusionBattery, DiffusionState
from .kernels import PeriodKernel
from .kibam import KiBaM, KiBaMState
from .peukert import PeukertBattery
from .ratecapacity import (
    RateCapacityCurve,
    extrapolated_capacities,
    sweep_rate_capacity,
)
from .stochastic import StochasticKiBaM

__all__ = [
    "BatteryModel",
    "BatteryRun",
    "as_segments",
    "KiBaM",
    "KiBaMState",
    "DiffusionBattery",
    "DiffusionState",
    "PeriodKernel",
    "StochasticKiBaM",
    "PeukertBattery",
    "RateCapacityCurve",
    "sweep_rate_capacity",
    "extrapolated_capacities",
    "calibrate_kibam",
    "calibrate_diffusion",
    "paper_cell_kibam",
    "paper_cell_diffusion",
    "paper_cell_stochastic",
    "PAPER_MAX_CAPACITY_C",
    "PAPER_NOMINAL_CAPACITY_C",
    "PAPER_NOMINAL_CURRENT_A",
    "PAPER_WELL_SPLIT",
]

"""Stochastic battery model (substitute for Rao et al. 2005, paper ref [13]).

Table 2 of the paper estimates lifetimes with "the stochastic battery
model from [13]" — a stochastic refinement of the two-well kinetic
picture whose full specification lives in a bachelor's thesis we cannot
access.  Per DESIGN.md §5 we build the closest published description:
a time-slotted KiBaM in which the bound→available recovery flow per
slot is a non-negative random variable whose *mean* equals the kinetic
flow ``k_flow · (h2 - h1) · dt``.  Fluctuations model the stochastic
nature of the electrochemical recovery process (Chiasserini–Rao style);
with ``noise = 0`` the model degenerates to the forward-Euler
discretization of KiBaM, and its expectation matches KiBaM for any
noise level (property-tested in ``tests/battery/test_stochastic.py``).

Determinism: the model takes an explicit seed, so experiment runs are
reproducible; Table 2 averages over seeds exactly like the paper
averages over task-graph sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import BatteryError
from .base import BatteryModel
from .kibam import KiBaM

__all__ = ["StochasticKiBaM"]


@dataclass(frozen=True)
class _StochState:
    y1: float
    y2: float


class StochasticKiBaM(BatteryModel):
    """Time-slotted KiBaM with stochastic recovery flow.

    Parameters
    ----------
    capacity, c, kp:
        As in :class:`~repro.battery.kibam.KiBaM`.
    dt:
        Slot length in seconds.  Must be small relative to ``1/kp``
        (the kinetic time constant) for the discretization to track the
        analytic model; a guard rejects ``dt > 0.2 / kp``.
    noise:
        Relative standard deviation of the per-slot recovery flow
        (gamma-distributed with the kinetic mean).  0 disables
        stochasticity.
    seed:
        Seed for the internal random generator.
    """

    def __init__(
        self,
        capacity: float,
        c: float,
        kp: float,
        *,
        dt: float = 1.0,
        noise: float = 0.25,
        seed: Optional[int] = 0,
    ) -> None:
        if not (capacity > 0):
            raise BatteryError(f"capacity must be > 0, got {capacity}")
        if not (0 < c < 1):
            raise BatteryError(f"c must be in (0, 1), got {c}")
        if not (kp > 0):
            raise BatteryError(f"kp must be > 0, got {kp}")
        if not (dt > 0):
            raise BatteryError(f"dt must be > 0, got {dt}")
        if dt > 0.2 / kp:
            raise BatteryError(
                f"slot dt={dt:.4g}s too coarse for kp={kp:.4g}/s "
                f"(need dt <= {0.2 / kp:.4g}s for a stable discretization)"
            )
        if noise < 0:
            raise BatteryError(f"noise must be >= 0, got {noise}")
        self.capacity = float(capacity)
        self.c = float(c)
        self.kp = float(kp)
        self.dt = float(dt)
        self.noise = float(noise)
        self._k_flow = kp * c * (1.0 - c)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def fresh_state(self) -> _StochState:
        return _StochState(
            self.c * self.capacity, (1 - self.c) * self.capacity
        )

    def theoretical_capacity(self) -> float:
        return self.capacity

    def as_kibam(self) -> KiBaM:
        """The deterministic analytic model this one fluctuates around."""
        return KiBaM(self.capacity, self.c, self.kp)

    # ------------------------------------------------------------------
    def _flow(self, y1: float, y2: float, dt: float) -> float:
        """Recovery charge moved bound -> available in one slot."""
        h1 = y1 / self.c
        h2 = y2 / (1.0 - self.c)
        mean = self._k_flow * (h2 - h1) * dt
        if mean <= 0:
            # Reverse flow (available -> bound) happens deterministically;
            # the stochastic recovery story only applies to recovery.
            return mean
        if self.noise == 0:
            return mean
        # Gamma keeps the flow non-negative with the requested mean and
        # relative std; shape = 1/noise², scale = mean·noise².
        shape = 1.0 / (self.noise**2)
        return float(self._rng.gamma(shape, mean / shape))

    def advance(
        self, state: _StochState, current: float, dt: float
    ) -> Tuple[_StochState, Optional[float]]:
        if dt < 0:
            raise BatteryError(f"dt must be >= 0, got {dt}")
        if state.y1 <= 0:
            return state, 0.0
        y1, y2 = state.y1, state.y2
        elapsed = 0.0
        remaining = dt
        while remaining > 0:
            # Partial final slots are fine: the flow scales with step.
            step = min(self.dt, remaining)
            flow = self._flow(y1, y2, step)
            flow = min(flow, y2) if flow > 0 else max(flow, -y1)
            y1_new = y1 - current * step + flow
            y2_new = y2 - flow
            if y1_new <= 0:
                # Death inside the slot: linear interpolation of y1.
                drop = y1 - y1_new
                frac = y1 / drop if drop > 0 else 0.0
                death = min(max(elapsed + frac * step, 0.0), dt)
                return _StochState(0.0, y2_new), death
            y1, y2 = y1_new, y2_new
            elapsed += step
            remaining -= step
        return _StochState(y1, y2), None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StochasticKiBaM(capacity={self.capacity:.6g}C, c={self.c:.4g}, "
            f"kp={self.kp:.4g}/s, dt={self.dt:.3g}s, noise={self.noise:.3g})"
        )

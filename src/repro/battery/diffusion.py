"""Rakhmatov–Vrudhula diffusion battery model (paper ref [14]).

The analytical high-level model behind most battery-aware scheduling
work.  One-dimensional diffusion of the electroactive species toward
the electrode gives, for a load ``i(τ)`` and a candidate lifetime
``L``, the *apparent charge lost*

    sigma(L) = ∫_0^L i dτ
             + 2 Σ_{m=1..∞} ∫_0^L i(τ) e^{-β² m² (L - τ)} dτ,

and the battery is exhausted at the first ``L`` with
``sigma(L) = alpha`` (a charge-like capacity parameter).  The first
term is charge actually consumed; the series is the *unavailable*
charge temporarily locked in the concentration gradient, which decays
(the recovery effect of §3) when the load drops.

Although the defining integral looks history-dependent, each series
term

    u_m(t) = ∫_0^t i(τ) e^{-β² m² (t-τ)} dτ

obeys ``du_m/dt = i(t) - β² m² u_m``, so the model is Markovian in the
truncated state vector ``(consumed, u_1..u_M)``; for a constant-current
segment each ``u_m`` advances in closed form.  Truncation at
``M = 20`` terms is far below other modelling error (the m-th term is
suppressed by ``e^{-β² m²}``; the paper's own citations use 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import brentq

from ..errors import BatteryError
from .base import BatteryModel
from .kernels import PeriodKernel, affine_prefix_diag

__all__ = ["DiffusionBattery", "DiffusionState", "DiffusionPeriodKernel"]


@dataclass(frozen=True)
class DiffusionState:
    """Consumed charge plus the truncated diffusion memory terms."""

    consumed: float
    memory: np.ndarray  # shape (M,), the u_m values

    def sigma(self) -> float:
        """Apparent charge lost for this state."""
        return self.consumed + 2.0 * float(np.sum(self.memory))


class DiffusionBattery(BatteryModel):
    """Rakhmatov–Vrudhula model with closed-form segment propagation.

    Parameters
    ----------
    alpha:
        Capacity parameter in coulombs: apparent charge at exhaustion.
        Under an infinitesimal load the battery delivers exactly
        ``alpha`` coulombs, so ``alpha`` plays the role of the
        theoretical (maximum) capacity.
    beta:
        Diffusion rate parameter in s^-1/2; smaller beta means slower
        diffusion and a stronger rate-capacity effect.
    terms:
        Number of series terms ``M`` to keep.
    """

    def __init__(self, alpha: float, beta: float, terms: int = 20) -> None:
        if not (alpha > 0):
            raise BatteryError(f"alpha must be > 0, got {alpha}")
        if not (beta > 0):
            raise BatteryError(f"beta must be > 0, got {beta}")
        if terms < 1:
            raise BatteryError(f"terms must be >= 1, got {terms}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.terms = int(terms)
        m = np.arange(1, terms + 1, dtype=float)
        self._b2m2 = (beta * m) ** 2  # β² m², the decay rates

    # ------------------------------------------------------------------
    def fresh_state(self) -> DiffusionState:
        return DiffusionState(0.0, np.zeros(self.terms))

    def theoretical_capacity(self) -> float:
        return self.alpha

    def sigma(self, state: DiffusionState) -> float:
        """Apparent charge lost (death when this reaches alpha)."""
        return state.sigma()

    def period_kernel(
        self, durations: np.ndarray, currents: np.ndarray
    ) -> "DiffusionPeriodKernel":
        return DiffusionPeriodKernel(self, durations, currents)

    # ------------------------------------------------------------------
    def _state_at(
        self, state: DiffusionState, current: float, t: float
    ) -> DiffusionState:
        decay = np.exp(-self._b2m2 * t)
        memory = state.memory * decay + current * (1.0 - decay) / self._b2m2
        return DiffusionState(state.consumed + current * t, memory)

    def advance(
        self, state: DiffusionState, current: float, dt: float
    ) -> Tuple[DiffusionState, Optional[float]]:
        if dt < 0:
            raise BatteryError(f"dt must be >= 0, got {dt}")
        if self.sigma(state) >= self.alpha:
            return state, 0.0
        if dt == 0:
            return state, None
        death = self._first_death(state, current, dt)
        if death is None:
            return self._state_at(state, current, dt), None
        return self._state_at(state, current, death), death

    def _first_death(
        self, state: DiffusionState, current: float, dt: float
    ) -> Optional[float]:
        """Earliest t in (0, dt] where sigma reaches alpha, or None.

        Under constant current, d(sigma)/dt = i + 2 Σ (i - β²m² u_m)
        = (2M+1) i - 2 Σ β²m² u_m; each u_m relaxes monotonically toward
        i/(β²m²), so the derivative is monotone in t and sigma has at
        most one interior extremum.  With i > 0 the late-time slope is
        +i > 0, so sigma can only cross alpha once on the way up; with
        i = 0 sigma is non-increasing (pure recovery) and cannot cross.
        An endpoint check decides almost every segment; because the
        slope is a mixed-sign sum of exponentials it is not strictly
        one-signed, so a few interior probes guard against the (rare)
        transient spike above alpha that recovers before the segment
        ends — physically a death the endpoint check would miss.
        """
        if current <= 0:
            return None  # recovery: sigma non-increasing
        def g(t):
            return (
                self.sigma(self._state_at(state, current, t)) - self.alpha
            )
        if g(dt) < 0:
            for frac in (0.25, 0.5, 0.75):
                t = dt * frac
                if g(t) >= 0:
                    return self._bracketed_crossing(g, 0.0, t, dt)
            return None
        return self._bracketed_crossing(g, 0.0, dt, dt)

    @staticmethod
    def _bracketed_crossing(g, lo: float, hi: float, dt: float) -> float:
        """Refine the first upward crossing of g within [lo, hi]."""
        if g(lo) >= 0:
            return lo
        # Tighten the bracket with a forward scan before root-finding.
        n = 16
        step_lo = lo
        for j in range(1, n + 1):
            t = lo + (hi - lo) * j / n
            if g(t) >= 0:
                hi = t
                break
            step_lo = t
        lo = step_lo
        return float(brentq(g, lo, hi, xtol=1e-12, rtol=8.9e-16))

    # ------------------------------------------------------------------
    def unavailable_charge(self, state: DiffusionState) -> float:
        """Charge temporarily locked in the gradient (recoverable)."""
        return 2.0 * float(np.sum(state.memory))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiffusionBattery(alpha={self.alpha:.6g}C, beta={self.beta:.4g}, "
            f"terms={self.terms})"
        )


class DiffusionPeriodKernel(PeriodKernel):
    """Closed-form whole-period map for the diffusion model.

    Over a constant-current segment each memory term advances as the
    affine map ``u' = u e^{-β²m²Δt} + i (1 - e^{-β²m²Δt})/β²m²`` with a
    *diagonal* decay, so the full-period map is ``u -> D u + c`` with
    ``D = diag(e^{-β²m²T})`` and ``c`` the scanned load vector, and
    ``k`` tiled periods collapse to the elementwise geometric series
    ``u_k = D^k u_0 + (1 - D^k)/(1 - D) c`` (evaluated with ``expm1``
    for decay rates near 0).  ``D`` and all prefix decays depend only
    on the durations; every load term is linear in the currents, so
    :meth:`scaled` reuses the expensive precomputation.
    """

    #: In-segment probe offsets (fractions of each segment), matching
    #: the scalar ``_first_death`` endpoint + interior spike checks.
    _FRACS = (0.25, 0.5, 0.75, 1.0)

    def __init__(
        self,
        model: DiffusionBattery,
        durations: np.ndarray,
        currents: np.ndarray,
    ) -> None:
        super().__init__(model, durations, currents)
        b2m2 = model._b2m2
        self._alpha = model.alpha
        a_seg = np.exp(-np.outer(durations, b2m2))  # (n, M) decays
        b_seg = currents[:, None] * (1.0 - a_seg) / b2m2
        a_pre, b_pre = affine_prefix_diag(a_seg, b_seg)
        m = b2m2.size
        # Maps from period start to each segment *start* (for probes).
        self._decay_to_start = np.vstack([np.ones((1, m)), a_pre[:-1]])
        self._load_to_start = np.vstack([np.zeros((1, m)), b_pre[:-1]])
        # The full-period affine map u -> D u + c.
        self._decay_cycle = a_pre[-1]
        self._load_cycle = b_pre[-1]
        self._log_decay_cycle = -b2m2 * self.period
        # In-segment probe decays at the scalar path's check points and
        # the summed-over-m load responses (times current at use).
        self._probe_decay = np.stack(
            [np.exp(-np.outer(f * durations, b2m2)) for f in self._FRACS]
        )  # (4, n, M)
        self._probe_load_sum = (
            ((1.0 - self._probe_decay) / b2m2).sum(axis=2)
        )  # (4, n)
        seg_charge = durations * currents
        self._consumed_to_start = np.concatenate(
            [[0.0], np.cumsum(seg_charge)[:-1]]
        )
        self._probe_consumed = (
            np.asarray(self._FRACS)[:, None] * seg_charge[None, :]
        )  # (4, n) charge drawn within the segment up to each probe

    def _rescale_loads(self, multiplier: float) -> None:
        self._load_to_start = self._load_to_start * multiplier
        self._load_cycle = self._load_cycle * multiplier
        self._consumed_to_start = self._consumed_to_start * multiplier
        self._probe_consumed = self._probe_consumed * multiplier

    def state_after_cycles(self, k: int) -> DiffusionState:
        if k == 0:
            return self.model.fresh_state()
        # (1 - D^k) / (1 - D), elementwise and expm1-stable; a decay
        # rate that underflows to exactly 0 degenerates to the k-term
        # constant sum.
        num = -np.expm1(k * self._log_decay_cycle)
        den = -np.expm1(self._log_decay_cycle)
        safe = den > 0
        geom = np.where(safe, num / np.where(safe, den, 1.0), float(k))
        return DiffusionState(
            k * self.charge_per_cycle, self._load_cycle * geom
        )

    def _probe_sigma(self, state: DiffusionState) -> np.ndarray:
        """Apparent charge lost at every probe point of one pass.

        Shape ``(4, n)``: the scalar path's four in-segment check
        points for each of the ``n`` segments, all in one batched
        expression.
        """
        u_start = (
            self._decay_to_start * state.memory + self._load_to_start
        )  # (n, M) memory at every segment start
        mem_sum = (
            np.einsum("nm,fnm->fn", u_start, self._probe_decay)
            + self.currents[None, :] * self._probe_load_sum
        )  # (4, n) summed memory at every probe point
        consumed = (
            state.consumed
            + self._consumed_to_start[None, :]
            + self._probe_consumed
        )
        return consumed + 2.0 * mem_sum

    def pass_dies(self, state: DiffusionState) -> bool:
        if state.sigma() >= self._alpha:
            return True
        return bool(np.any(self._probe_sigma(state) >= self._alpha))

    def pass_end_state(self, state: DiffusionState) -> DiffusionState:
        return DiffusionState(
            state.consumed + self.charge_per_cycle,
            state.memory * self._decay_cycle + self._load_cycle,
        )

    def death_cycle_upper_hint(self) -> Optional[int]:
        # sigma >= consumed = k * Q, so death is certain once the
        # consumed charge alone clears alpha (margin for float dust).
        if self.charge_per_cycle <= 0:
            return None
        return int(self._alpha / self.charge_per_cycle) + 3

    def death_segment_candidate(self, state: DiffusionState) -> int:
        if state.sigma() >= self._alpha:
            return 0
        crossing = np.any(self._probe_sigma(state) >= self._alpha, axis=0)
        hits = np.flatnonzero(crossing)
        return int(hits[0]) if hits.size else 0

    def pass_prefix_state(
        self, state: DiffusionState, j: int
    ) -> DiffusionState:
        if j == 0:
            return state
        return DiffusionState(
            state.consumed + self._consumed_to_start[j],
            self._decay_to_start[j] * state.memory + self._load_to_start[j],
        )

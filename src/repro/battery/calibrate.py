"""Battery parameter calibration to the paper's AAA NiMH cell.

The paper anchors its cell with two published numbers (§5):

* **maximum capacity** 2000 mAh — charge under infinitesimal load;
* **nominal capacity** ≈1600 mAh — charge under a nominal (≈1 C) load.

For KiBaM the maximum capacity *is* the total capacity parameter and
the nominal capacity pins the kinetics: given the well split ``c`` we
bisect the rate constant ``kp`` until a constant nominal-rate discharge
delivers the nominal charge.  The diffusion model is calibrated the
same way on ``beta`` with ``alpha`` as the maximum capacity.

Factories :func:`paper_cell_kibam`, :func:`paper_cell_diffusion` and
:func:`paper_cell_stochastic` return ready-to-use calibrated cells and
are what every Table 2 style experiment uses.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from scipy.optimize import brentq

from ..errors import CalibrationError
from .diffusion import DiffusionBattery
from .kibam import KiBaM
from .stochastic import StochasticKiBaM

__all__ = [
    "PAPER_MAX_CAPACITY_C",
    "PAPER_NOMINAL_CAPACITY_C",
    "PAPER_NOMINAL_CURRENT_A",
    "PAPER_WELL_SPLIT",
    "PAPER_ANCHORS",
    "calibrate_kibam",
    "calibrate_kibam_two_anchors",
    "calibrate_diffusion",
    "paper_cell_kibam",
    "paper_cell_diffusion",
    "paper_cell_stochastic",
]

#: 2000 mAh in coulombs — the theoretical/maximum capacity of the cell.
PAPER_MAX_CAPACITY_C = 2000.0 * 3.6
#: ~1600 mAh in coulombs — the nominal capacity the paper quotes.
PAPER_NOMINAL_CAPACITY_C = 1600.0 * 3.6
#: Load at which the nominal capacity is assumed delivered (≈1 C rate,
#: in the middle of the currents the paper's processor actually draws).
PAPER_NOMINAL_CURRENT_A = 2.0
#: Available-well fraction; 0.625 is the classic KiBaM default and the
#: reproduction's fixed structural choice (see DESIGN.md §5).
PAPER_WELL_SPLIT = 0.625

#: Two-point rate-capacity anchors for the paper cell, chosen to put
#: the knee of the delivered-capacity curve inside the current range
#: the paper's processor actually draws (≈0.45 A for the floor-bound
#: BAS schemes up to ≈1.25 A for no-DVS EDF), reproducing the spread of
#: Table 2's charge column.  Format: (current A, delivered charge C).
PAPER_ANCHORS = (
    (0.45, 1800.0 * 3.6),
    (1.25, 1570.0 * 3.6),
)


def _delivered_at(model_factory, param: float, current: float) -> float:
    model = model_factory(param)
    return model.lifetime_constant(current).delivered_charge


def calibrate_kibam(
    capacity: float = PAPER_MAX_CAPACITY_C,
    *,
    c: float = PAPER_WELL_SPLIT,
    anchor_current: float = PAPER_NOMINAL_CURRENT_A,
    anchor_delivered: float = PAPER_NOMINAL_CAPACITY_C,
    kp_bounds: tuple = (1e-6, 1.0),
) -> KiBaM:
    """Fit KiBaM's rate constant so a constant ``anchor_current``
    discharge delivers ``anchor_delivered`` coulombs.

    Raises
    ------
    CalibrationError
        If the anchor is unreachable within ``kp_bounds`` (e.g. asking
        for more than the total capacity, or less than the available
        well).
    """
    if not (c * capacity < anchor_delivered < capacity):
        raise CalibrationError(
            f"anchor_delivered={anchor_delivered:.6g}C must lie strictly "
            f"between the available well ({c * capacity:.6g}C) and the "
            f"total capacity ({capacity:.6g}C)"
        )

    def residual(kp: float) -> float:
        return (
            _delivered_at(lambda k: KiBaM(capacity, c, k), kp, anchor_current)
            - anchor_delivered
        )

    lo, hi = kp_bounds
    r_lo, r_hi = residual(lo), residual(hi)
    if r_lo * r_hi > 0:
        raise CalibrationError(
            f"kp_bounds {kp_bounds} do not bracket the anchor "
            f"(residuals {r_lo:.4g}, {r_hi:.4g})"
        )
    kp = float(brentq(residual, lo, hi, rtol=1e-10))
    return KiBaM(capacity, c, kp)


def calibrate_diffusion(
    alpha: float = PAPER_MAX_CAPACITY_C,
    *,
    anchor_current: float = PAPER_NOMINAL_CURRENT_A,
    anchor_delivered: float = PAPER_NOMINAL_CAPACITY_C,
    terms: int = 20,
    beta_bounds: tuple = (1e-4, 10.0),
) -> DiffusionBattery:
    """Fit the diffusion rate ``beta`` to the same nominal anchor."""
    if not (0 < anchor_delivered < alpha):
        raise CalibrationError(
            f"anchor_delivered={anchor_delivered:.6g}C must be in "
            f"(0, alpha={alpha:.6g}C)"
        )

    def residual(beta: float) -> float:
        return (
            _delivered_at(
                lambda b: DiffusionBattery(alpha, b, terms),
                beta,
                anchor_current,
            )
            - anchor_delivered
        )

    lo, hi = beta_bounds
    r_lo, r_hi = residual(lo), residual(hi)
    if r_lo * r_hi > 0:
        raise CalibrationError(
            f"beta_bounds {beta_bounds} do not bracket the anchor "
            f"(residuals {r_lo:.4g}, {r_hi:.4g})"
        )
    beta = float(brentq(residual, lo, hi, rtol=1e-10))
    return DiffusionBattery(alpha, beta, terms)


def calibrate_kibam_two_anchors(
    capacity: float = PAPER_MAX_CAPACITY_C,
    *,
    anchors=PAPER_ANCHORS,
    c_bounds: tuple = (0.05, 0.95),
    kp_bounds: tuple = (1e-7, 1.0),
) -> KiBaM:
    """Fit *both* KiBaM kinetics parameters (c, kp) to two anchors.

    Solving two (current, delivered) points pins the rate-capacity
    curve's position *and* steepness; the single-anchor
    :func:`calibrate_kibam` can only place one point on it.  The outer
    bisection runs on ``c`` (delivered charge at the high-current
    anchor is monotone in ``c`` once ``kp`` is re-fit to the
    low-current anchor); the inner fit reuses the single-anchor solver.
    """
    (i_lo, q_lo), (i_hi, q_hi) = sorted(anchors)
    for q, name in ((q_lo, "low"), (q_hi, "high")):
        if not (0 < q < capacity):
            raise CalibrationError(
                f"{name}-current anchor delivered={q:.6g}C must be in "
                f"(0, capacity={capacity:.6g}C)"
            )
    if q_hi >= q_lo:
        raise CalibrationError(
            "the higher-current anchor must deliver less charge "
            f"(got {q_lo:.6g}C @ {i_lo:.3g}A vs {q_hi:.6g}C @ {i_hi:.3g}A)"
        )

    def inner(c: float) -> KiBaM:
        return calibrate_kibam(
            capacity,
            c=c,
            anchor_current=i_lo,
            anchor_delivered=q_lo,
            kp_bounds=kp_bounds,
        )

    def residual(c: float) -> float:
        cell = inner(c)
        return cell.lifetime_constant(i_hi).delivered_charge - q_hi

    lo, hi = c_bounds
    # The available well must stay below the high anchor's delivery.
    hi = min(hi, q_hi / capacity * 0.999)
    r_lo, r_hi = residual(lo), residual(hi)
    if r_lo * r_hi > 0:
        raise CalibrationError(
            f"c_bounds ({lo:.4g}, {hi:.4g}) do not bracket the two-anchor "
            f"fit (residuals {r_lo:.4g}, {r_hi:.4g})"
        )
    c = float(brentq(residual, lo, hi, rtol=1e-9))
    return inner(c)


@lru_cache(maxsize=None)
def paper_cell_kibam() -> KiBaM:
    """The calibrated AAA NiMH cell as an analytic KiBaM (cached)."""
    return calibrate_kibam_two_anchors()


@lru_cache(maxsize=None)
def paper_cell_diffusion() -> DiffusionBattery:
    """The calibrated AAA NiMH cell as a diffusion battery (cached)."""
    return calibrate_diffusion()


def paper_cell_stochastic(
    seed: Optional[int] = 0, *, dt: float = 1.0, noise: float = 0.25
) -> StochasticKiBaM:
    """The calibrated cell as a stochastic KiBaM (Table 2's model).

    Kinetic parameters come from the cached KiBaM calibration; only the
    stochastic layer (slot length, noise, seed) is chosen here.
    """
    base = paper_cell_kibam()
    return StochasticKiBaM(
        base.capacity, base.c, base.kp, dt=dt, noise=noise, seed=seed
    )

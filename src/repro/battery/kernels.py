"""Vectorized lifetime kernels: closed-form whole-period battery maps.

The single hottest path of every experiment — tiling a hyperperiod
current profile through a battery model until the cell dies
(:meth:`~repro.battery.base.BatteryModel.run_profile`) — used to be a
pure-Python per-segment loop.  But every analytic model in this package
is *affine in its state* over a constant-current segment, so a whole
profile period composes into one precomputed affine map and K tiled
periods into its K-th power:

* build per-segment affine maps ``x -> A_j x + b_j`` (numpy, no
  per-segment Python);
* compose them into prefix maps with a Hillis–Steele doubling scan
  (``O(n log n)`` work, products of decay factors in ``(0, 1]`` so the
  scan can never overflow), giving the state at every segment boundary
  of a pass as one batched expression;
* the full-period map ``x -> D x + c`` then advances whole tiled
  cycles at once — ``x_k = D^k x_0 + (I + D + ... + D^{k-1}) c`` — in
  log time (elementwise geometric series for diagonal ``D``, repeated
  squaring for the matrix case);
* binary-search the death *cycle* with a vectorized "does one pass
  from this state die?" predicate, then localize the death
  *segment/instant* inside the final period with the existing scalar
  path (which owns the root-finding tolerances).

Concrete kernels live next to their models
(:class:`~repro.battery.diffusion.DiffusionPeriodKernel`,
:class:`~repro.battery.kibam.KiBaMPeriodKernel`,
:class:`~repro.battery.peukert.PeukertPeriodKernel`); models without a
kernel (the RNG-driven stochastic model, where draw order *is* the
semantics) keep the scalar loop, which remains the universal fallback.

Numerical contract: kernel results match the scalar path to floating
point noise (relative ``~1e-9``; verified by the property suite in
``tests/battery/test_fast_paths.py``).  The only potential divergence
is a death that grazes the capacity threshold within one ulp, which
may move by one period; the kernel detects the mismatch during scalar
localization and falls back to pure scalar tiling from that point.
"""

from __future__ import annotations

import abc
import copy
from typing import Any, Optional, Tuple

import numpy as np

from ..errors import BatteryError
from .base import BatteryModel, BatteryRun

__all__ = [
    "PeriodKernel",
    "KERNEL_VERSIONS",
    "kernel_version_token",
    "run_profile_batch",
    "affine_prefix_diag",
    "affine_prefix_matrix",
]

#: Per-component kernel semantic versions.  Bump an entry whenever the
#: corresponding numerics change (new probe points, different
#: composition order, altered fallback behaviour): the token below is
#: folded into every campaign-spec content hash, so stale cached
#: results computed by the old generation are invalidated
#: automatically.
KERNEL_VERSIONS = {
    "diffusion": 1,
    "kibam": 1,
    "peukert": 1,
    "scalar": 1,  # the per-segment reference loop in BatteryModel
    # The simulator generation: exact release clock, scale-relative
    # epsilon and deadline-miss semantics landed together with the
    # steady-state fast path; results of edge-case cached scenarios
    # can differ from the previous engine at float-dust level.
    # v2: wcet-relative actuals validation tolerance and zero-speed
    # laEDF hypothetical semantics (affects large-WCET and idle-
    # lookahead edge cases only).
    "engine": 2,
    # The struct-of-arrays multi-scenario engine (sim/vector.py).
    # Bump when its event replication or fallback classification
    # changes in a way that could alter any vectorized result.
    # v2: laEDF / pUBS / ALL_RELEASED / job-keyed actuals became
    # vector-eligible, so scenarios that previously took the scalar
    # fallback now run through the array kernels.
    "vector": 2,
}


def kernel_version_token() -> str:
    """A stable string identifying the battery-kernel generation.

    Consumed by :func:`repro.campaign.spec.content_hash`: any bump in
    :data:`KERNEL_VERSIONS` changes the token, which changes every
    spec hash, which turns the whole on-disk campaign cache into a
    miss — exactly what a kernel-numerics change requires.
    """
    return ",".join(
        f"{name}={version}"
        for name, version in sorted(KERNEL_VERSIONS.items())
    )


def run_profile_batch(
    loads: "list[tuple[BatteryModel, np.ndarray, np.ndarray]]",
    *,
    repeat: Optional[int] = None,
    max_time: float = 1e7,
    fast: bool = True,
    stats: Optional[dict] = None,
) -> "list[BatteryRun]":
    """Tile many ``(model, durations, currents)`` loads to death.

    The batched entry point the multi-scenario simulation driver
    (:mod:`repro.sim.batch`) hands columnar trace profiles to: one
    call evaluates every scenario's battery outcome, each load through
    its model's vectorized period kernel when the model provides one
    (the scalar per-segment loop remains the per-model fallback).
    Results are bit-identical to calling
    :meth:`~repro.battery.base.BatteryModel.run_profile` per load —
    the value of the batch is the single columnar hand-off (and that
    each evaluation inside it is a handful of vector ops, not a
    Python segment walk).

    Numeric guardrail: a fast-path run whose ``lifetime`` or
    ``delivered_charge`` comes back NaN/inf is re-evaluated through
    the scalar per-segment loop (the authority on the numerics) and
    counted under ``stats["numeric_demotions"]`` when a ``stats``
    dict is supplied.
    """
    runs = []
    demotions = 0
    for model, durations, currents in loads:
        run = model.run_profile(
            durations, currents,
            repeat=repeat, max_time=max_time, fast=fast,
        )
        if fast and not (
            np.isfinite(run.lifetime)
            and np.isfinite(run.delivered_charge)
        ):
            run = model.run_profile(
                durations, currents,
                repeat=repeat, max_time=max_time, fast=False,
            )
            demotions += 1
        runs.append(run)
    if stats is not None:
        stats["numeric_demotions"] = (
            stats.get("numeric_demotions", 0) + demotions
        )
    return runs


def affine_prefix_diag(
    a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Inclusive prefix composition of diagonal affine maps.

    ``a``, ``b`` have shape ``(n, M)``: segment ``j`` maps
    ``u -> a[j] * u + b[j]`` elementwise.  Returns ``(A, B)`` where
    ``A[j] * u0 + B[j]`` is the state after segments ``0..j``.
    Hillis–Steele doubling scan: ``O(n log n)`` elementwise work, and
    since every ``a`` entry is a decay factor in ``(0, 1]`` the
    products only shrink — no overflow for any profile length.
    """
    A = np.array(a, dtype=float)
    B = np.array(b, dtype=float)
    n = A.shape[0]
    s = 1
    while s < n:
        # Compose map ending at j with the prefix ending at j - s.
        # RHS slices are evaluated before assignment, and A is only
        # written after B consumed its old values.
        B[s:] = A[s:] * B[:-s] + B[s:]
        A[s:] = A[s:] * A[:-s]
        s *= 2
    return A, B


def affine_prefix_matrix(
    a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Inclusive prefix composition of matrix affine maps.

    ``a`` has shape ``(n, k, k)``, ``b`` shape ``(n, k)``; segment
    ``j`` maps ``x -> a[j] @ x + b[j]``.  Same doubling scan as
    :func:`affine_prefix_diag` with batched matmuls.
    """
    A = np.array(a, dtype=float)
    B = np.array(b, dtype=float)
    n = A.shape[0]
    s = 1
    while s < n:
        B[s:] = np.einsum("nij,nj->ni", A[s:], B[:-s]) + B[s:]
        A[s:] = A[s:] @ A[:-s]
        s *= 2
    return A, B


def _affine_matrix_power(
    P: np.ndarray, q: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(P, q)`` affine map iterated ``k`` times, by repeated squaring."""
    dim = P.shape[0]
    acc_P = np.eye(dim)
    acc_q = np.zeros(dim)
    base_P, base_q = P, q
    while k:
        if k & 1:
            acc_q = base_P @ acc_q + base_q
            acc_P = base_P @ acc_P
        k >>= 1
        if k:
            base_q = base_P @ base_q + base_q
            base_P = base_P @ base_P
    return acc_P, acc_q


class PeriodKernel(abc.ABC):
    """Precomputed whole-period propagator for one validated profile.

    Subclasses provide the model-specific closed forms; this base owns
    the tiling driver (death-cycle binary search, ``repeat`` /
    ``max_time`` semantics — bit-faithful to the scalar
    :meth:`~repro.battery.base.BatteryModel.run_profile` loop) and the
    scalar localization of the death instant inside the final period.

    Everything that depends only on *durations* is computed once in
    ``__init__``; everything linear in the *currents* is rescaled by
    :meth:`scaled` without recomputation, which is what lets a
    ~40-probe survival bisection reuse one kernel.
    """

    def __init__(
        self,
        model: BatteryModel,
        durations: np.ndarray,
        currents: np.ndarray,
    ) -> None:
        self.model = model
        self.durations = durations
        self.currents = currents
        self.period = float(np.sum(durations))
        self.charge_per_cycle = float(np.dot(durations, currents))

    # -- model-specific closed forms -----------------------------------
    @abc.abstractmethod
    def state_after_cycles(self, k: int) -> Any:
        """State after ``k`` full periods from the fresh state (log-time)."""

    @abc.abstractmethod
    def pass_dies(self, state: Any) -> bool:
        """Whether one pass of the profile from ``state`` kills the cell.

        Must agree with the scalar per-segment death checks: same probe
        points, same comparison sense, evaluated vectorized.
        """

    @abc.abstractmethod
    def pass_end_state(self, state: Any) -> Any:
        """State after one surviving pass (the affine period map)."""

    def death_cycle_upper_hint(self) -> Optional[int]:
        """A cycle count by which death is *certain*, or ``None``.

        Subclasses derive it from charge conservation (e.g. once the
        consumed charge alone exceeds the capacity parameter the pass
        predicate is true from its very first check), which turns the
        death-cycle binary search over ``max_time / T`` cycles into one
        over the actual lifetime's cycle count.
        """
        return None

    def death_segment_candidate(self, state: Any) -> int:
        """First segment index the vectorized death check flags.

        Only meaningful when ``pass_dies(state)`` is true; the scalar
        localization starts its walk here instead of replaying the
        whole final period.  The default (0) replays the full pass.
        """
        return 0

    def pass_prefix_state(self, state: Any, j: int) -> Any:
        """State at the start of segment ``j`` of a pass from ``state``."""
        if j == 0:
            return state
        raise NotImplementedError  # pragma: no cover - subclass hook

    def _rescale_loads(self, multiplier: float) -> None:
        """Scale every current-linear precomputation in place (on a copy)."""
        raise NotImplementedError  # pragma: no cover - subclass hook

    # -- shared drivers ------------------------------------------------
    def scaled(self, multiplier: float) -> "PeriodKernel":
        """A kernel for the same durations with currents scaled.

        Duration-dependent arrays (the decay maps, the dominant cost)
        are shared; only the current-linear load vectors are rescaled.
        """
        if multiplier < 0:
            raise BatteryError(
                f"current multiplier must be >= 0, got {multiplier}"
            )
        k = copy.copy(self)
        k.currents = self.currents * multiplier
        k.charge_per_cycle = self.charge_per_cycle * multiplier
        k._rescale_loads(multiplier)
        return k

    def survives_fresh_pass(self) -> bool:
        """Cheap predicate for survival bisections (no localization)."""
        return not self.pass_dies(self.model.fresh_state())

    def advance_pass(self, state: Any) -> Tuple[Any, Optional[float]]:
        """One pass from ``state``: ``(end_state, death_time | None)``.

        Death localization reuses the scalar segment walk, which owns
        the root-finding tolerances.
        """
        if not self.pass_dies(state):
            return self.pass_end_state(state), None
        state, t, delivered, died = self._localize_death(state)
        if died:
            return state, t
        return state, None  # threshold-grazing mismatch: survived after all

    def _localize_death(
        self, state: Any
    ) -> Tuple[Any, float, float, bool]:
        """Scalar death localization inside one (predicate-dying) pass.

        Jumps to the first segment the vectorized check flags, then
        walks the existing scalar path from there.  Returns
        ``(state, t, delivered, died)``: time and delivered charge
        from the pass start up to the death instant, or up to the pass
        end on a threshold-grazing predicate mismatch (``died`` False).
        """
        d, i = self.durations, self.currents
        j0 = self.death_segment_candidate(state)
        state = self.pass_prefix_state(state, j0)
        t = float(np.sum(d[:j0]))
        delivered = float(np.dot(d[:j0], i[:j0]))
        for dt, cur in zip(d[j0:], i[j0:]):
            state, death = self.model.advance(state, float(cur), float(dt))
            if death is not None:
                return state, t + death, delivered + cur * death, True
            t += dt
            delivered += cur * dt
        return state, t, delivered, False

    def run(
        self, *, repeat: Optional[int], max_time: float
    ) -> BatteryRun:
        """Tile the profile to death / ``repeat`` — scalar semantics.

        Mirrors the scalar driver exactly: a cycle that completes the
        requested ``repeat`` returns before the ``max_time`` check, and
        an undying profile raises once a completed cycle passes
        ``max_time``.
        """
        T = self.period
        Q = self.charge_per_cycle
        # First cycle count c with c * T > max_time (the scalar loop's
        # raise point), robust to float division dust.
        c_raise = max(1, int(max_time / T) + 1)
        while c_raise > 1 and (c_raise - 1) * T > max_time:
            c_raise -= 1
        while c_raise * T <= max_time:
            c_raise += 1
        cap = c_raise if repeat is None else min(repeat, c_raise)

        k_hi: Optional[int] = None
        if Q > 0:
            hint = self.death_cycle_upper_hint()
            if (
                hint is not None
                and hint < cap
                and self.pass_dies(self.state_after_cycles(hint - 1))
            ):
                k_hi = hint
            elif self.pass_dies(self.state_after_cycles(cap - 1)):
                k_hi = cap

        if k_hi is not None:
            lo, hi = 1, k_hi  # first dying cycle, 1-based
            while lo < hi:
                mid = (lo + hi) // 2
                if self.pass_dies(self.state_after_cycles(mid - 1)):
                    hi = mid
                else:
                    lo = mid + 1
            k_death = lo
            state = self.state_after_cycles(k_death - 1)
            t0 = (k_death - 1) * T
            delivered0 = (k_death - 1) * Q
            state, t, delivered, died = self._localize_death(state)
            if died:
                return BatteryRun(
                    died=True,
                    lifetime=t0 + t,
                    delivered_charge=delivered0 + delivered,
                )
            # The vectorized predicate and the scalar walk disagreed at
            # a grazing threshold: finish with the authoritative scalar
            # driver from the state we already reached.
            return self._scalar_tail(
                state, k_death, t0 + t, delivered0 + delivered,
                repeat, max_time,
            )

        if repeat is not None and repeat <= c_raise:
            return BatteryRun(
                died=False, lifetime=repeat * T, delivered_charge=repeat * Q
            )
        raise BatteryError(
            f"battery survived past max_time={max_time:.3g}s under "
            f"repeat=None; the load is too light to ever exhaust it"
        )

    def _scalar_tail(
        self,
        state: Any,
        cycles_done: int,
        t: float,
        delivered: float,
        repeat: Optional[int],
        max_time: float,
    ) -> BatteryRun:
        """Continue pure scalar tiling after a predicate/walk mismatch."""
        return self.model._run_profile_scalar(
            self.durations, self.currents, repeat, max_time,
            state=state, t=t, delivered=delivered, cycle=cycles_done,
        )

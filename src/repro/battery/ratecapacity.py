"""Rate-capacity curves and capacity extrapolation.

§5 of the paper defines the cell's *maximum capacity* (2000 mAh) as the
charge delivered under an infinitesimal load and the *available-well
charge* as the limit under infinite current, both read off a "load vs
delivered capacity" curve with extrapolated ends (the paper's second
Figure 5).  This module sweeps constant-current discharges through any
:class:`~repro.battery.base.BatteryModel` and produces that curve plus
the two extrapolated anchors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import BatteryError
from .base import BatteryModel
from .kibam import KiBaM

__all__ = [
    "RateCapacityCurve",
    "sweep_rate_capacity",
    "extrapolated_capacities",
]


@dataclass(frozen=True)
class RateCapacityCurve:
    """Delivered capacity as a function of constant load current.

    Attributes
    ----------
    currents:
        Load currents swept (amperes, ascending).
    delivered:
        Charge delivered before cutoff at each current (coulombs).
    lifetimes:
        Corresponding lifetimes (seconds).
    """

    currents: np.ndarray
    delivered: np.ndarray
    lifetimes: np.ndarray

    @property
    def delivered_mah(self) -> np.ndarray:
        return self.delivered / 3.6

    def rows(self) -> Tuple[Tuple[float, float, float], ...]:
        """(current A, delivered mAh, lifetime min) rows for printing."""
        return tuple(
            (float(i), float(q / 3.6), float(t / 60.0))
            for i, q, t in zip(self.currents, self.delivered, self.lifetimes)
        )


def sweep_rate_capacity(
    model: BatteryModel,
    currents: Sequence[float],
    *,
    max_time: float = 1e8,
) -> RateCapacityCurve:
    """Discharge the model at each constant current until cutoff."""
    cur = np.asarray(sorted(float(c) for c in currents), dtype=float)
    if cur.size == 0:
        raise BatteryError("need at least one sweep current")
    if np.any(cur <= 0):
        raise BatteryError("sweep currents must be > 0")
    delivered = np.empty_like(cur)
    lifetimes = np.empty_like(cur)
    for idx, c in enumerate(cur):
        run = model.lifetime_constant(float(c), max_time=max_time)
        delivered[idx] = run.delivered_charge
        lifetimes[idx] = run.lifetime
    return RateCapacityCurve(cur, delivered, lifetimes)


def extrapolated_capacities(
    model: BatteryModel,
    *,
    low_current: float = 1e-3,
    high_current: float = 100.0,
) -> Tuple[float, float]:
    """(maximum_capacity, available_capacity) in coulombs.

    The maximum capacity is the infinitesimal-load limit and the
    available capacity the infinite-load limit; we evaluate both by
    probing far into each regime, the numerical analogue of the paper's
    curve extrapolation.  For :class:`KiBaM` the infinite-load limit is
    known exactly (the available well) and is used directly.
    """
    maximum = model.lifetime_constant(
        low_current, max_time=1e12
    ).delivered_charge
    if isinstance(model, KiBaM):
        available = model.available_capacity()
    else:
        available = model.lifetime_constant(high_current).delivered_charge
    return float(maximum), float(available)

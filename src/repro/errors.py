"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TaskGraphError(ReproError):
    """Raised when a task graph is malformed (cycles, bad WCETs, ...)."""


class SchedulingError(ReproError):
    """Raised when a scheduling policy is mis-configured or infeasible."""


class DeadlineMissError(SchedulingError):
    """Raised by the simulator when a task graph misses its deadline.

    The paper's methodology guarantees deadline adherence; a miss in
    simulation therefore indicates either a bug or an over-utilized task
    set, and is surfaced loudly instead of being silently recorded.
    """

    def __init__(self, graph_name: str, deadline: float, time: float):
        self.graph_name = graph_name
        self.deadline = deadline
        self.time = time
        super().__init__(
            f"task graph {graph_name!r} missed deadline {deadline:.6g} "
            f"(violation detected at t={time:.6g})"
        )


class SpecFailure(SchedulingError):
    """One spec's execution failed, with structured provenance.

    Carries the original exception's class name, message, and traceback
    text so a failure observed on a remote worker (or quarantined into
    a :class:`~repro.campaign.failures.FailureReport`) stays
    diagnosable after it crossed a process or wire boundary.

    ``retryable`` marks failures worth charging against a spec's retry
    budget: transient faults (timeouts, injected chaos, transport
    hiccups) are; a deterministic executor bug would fail identically
    on every attempt but is retried anyway — the budget, not the flag,
    bounds the waste.
    """

    retryable = True

    def __init__(
        self,
        message: str,
        *,
        exc_type: str = "",
        traceback_text: str = "",
    ):
        self.exc_type = exc_type or type(self).__name__
        self.traceback_text = traceback_text
        super().__init__(message)


class SpecTimeout(SpecFailure):
    """A spec ran past its execution deadline and was interrupted.

    Raised by the local pool watchdog (:func:`repro.campaign.failures.
    spec_deadline`) and synthesized by the broker when a distributed
    worker holds a spec past its lease-backed deadline.  Always
    retryable: a timeout says nothing about the spec itself — the
    worker may have been descheduled, swapping, or wedged.
    """


class WorkerLost(SchedulingError):
    """A worker crashed, vanished, or was retired mid-campaign.

    Never charged against a *spec*'s retry budget (the work unit is
    simply requeued); it feeds the broker's per-worker health score
    instead.
    """

    retryable = True


class TransportFault(SchedulingError):
    """A transport-level fault: dropped/delayed/corrupt payload or ack.

    The distributed queue is designed so every transport fault is
    recoverable (leases requeue, outcomes are deduplicated by index),
    so this is retryable by construction.
    """

    retryable = True


class BatteryError(ReproError):
    """Raised for invalid battery model parameters or usage."""


class CalibrationError(BatteryError):
    """Raised when battery parameter calibration fails to converge."""


class ProfileError(ReproError):
    """Raised for malformed load-current profiles."""

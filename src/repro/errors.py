"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TaskGraphError(ReproError):
    """Raised when a task graph is malformed (cycles, bad WCETs, ...)."""


class SchedulingError(ReproError):
    """Raised when a scheduling policy is mis-configured or infeasible."""


class DeadlineMissError(SchedulingError):
    """Raised by the simulator when a task graph misses its deadline.

    The paper's methodology guarantees deadline adherence; a miss in
    simulation therefore indicates either a bug or an over-utilized task
    set, and is surfaced loudly instead of being silently recorded.
    """

    def __init__(self, graph_name: str, deadline: float, time: float):
        self.graph_name = graph_name
        self.deadline = deadline
        self.time = time
        super().__init__(
            f"task graph {graph_name!r} missed deadline {deadline:.6g} "
            f"(violation detected at t={time:.6g})"
        )


class BatteryError(ReproError):
    """Raised for invalid battery model parameters or usage."""


class CalibrationError(BatteryError):
    """Raised when battery parameter calibration fails to converge."""


class ProfileError(ReproError):
    """Raised for malformed load-current profiles."""

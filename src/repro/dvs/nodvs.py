"""No-DVS frequency setting: always run flat out.

Table 2's first row — plain EDF with the processor pinned at f_max
whenever there is pending work.  The most energy-hungry scheme and the
battery's worst case (maximal currents, idle gaps instead of stretched
execution, violating guideline 2).
"""

from __future__ import annotations

from ..sim.state import Candidate, SchedulerView
from .base import FrequencySetter

__all__ = ["NoDVS"]


class NoDVS(FrequencySetter):
    """Always f_max while work is pending."""

    name = "none"

    def select_speed(self, view: SchedulerView) -> float:
        return 1.0 if view.has_pending_work() else 0.0

    def hypothetical_speed(
        self, view: SchedulerView, cand: Candidate, estimate: float
    ) -> float:
        return 1.0

"""Cycle-conserving EDF (ccEDF) extended to task graphs — §4.1.

Pillai & Shin's ccEDF tracks, per task, a utilization contribution that
is the worst case while the task runs and the *actual* once it
finishes, reverting to worst case at the next release.  The paper
extends it to task graphs (Algorithm 1): the per-graph budget ``WC_i``
starts at ``Σ_j wc_ij``; when node ``j`` ends having used ``ac_ij``
cycles the budget is adjusted by ``ac_ij − wc_ij``; a fresh release
restores the full worst case.  The reference frequency is

    f_ref = U · f_max,   U = Σ_i WC_i / D_i.

Because U only ever *drops* while a graph instance executes (nodes can
only under-run their worst case) and jumps back up at releases, the
resulting voltage/clock assignment is locally non-increasing within an
instance — battery guideline 1 — and the algorithm never inserts idle
slots while work is pending — guideline 2.

Granularity
-----------
``granularity="node"`` is Algorithm 1 verbatim: each node completion
immediately swaps that node's worst case for its actual.  This is the
slack-reclamation grain the BAS methodology runs on.

``granularity="graph"`` models Table 2's *baseline* ccEDF row, where
the task-level algorithm of Pillai & Shin is handed each task graph as
one monolithic EDF task: node completions are invisible, and the
budget drops to the instance's actual total only when the whole
instance finishes.  (This reading is forced by the paper's reported
mean currents — see DESIGN.md §5 — and is exactly what "extending" a
task-level DVS algorithm without the paper's methodology gives you.)
"""

from __future__ import annotations

from typing import Dict

from ..errors import SchedulingError
from ..sim.state import Candidate, GraphStatus, SchedulerView
from .base import FrequencySetter

__all__ = ["CcEDF"]


class CcEDF(FrequencySetter):
    """Cycle-conserving EDF for periodic task graphs."""

    name = "ccEDF"

    def __init__(self, granularity: str = "node") -> None:
        if granularity not in ("node", "graph"):
            raise SchedulingError(
                f"granularity must be 'node' or 'graph', got {granularity!r}"
            )
        self.granularity = granularity
        self._wc: Dict[str, float] = {}
        self._actual_acc: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def on_sim_start(self, view: SchedulerView) -> None:
        # Before anything runs, budget everyone at worst case.
        self._wc = {
            g.name: g.ptg.graph.total_wcet for g in view.graphs
        }

    def on_release(self, view: SchedulerView, status: GraphStatus) -> None:
        # "...whereupon we switch back to the worst case specification."
        self._wc[status.name] = status.ptg.graph.total_wcet
        self._actual_acc[status.name] = 0.0

    def on_node_end(
        self,
        view: SchedulerView,
        graph_name: str,
        node: str,
        wc: float,
        ac: float,
        job_complete: bool,
    ) -> None:
        if self.granularity == "node":
            # WC_i = WC_i + ac_ij - wc_ij  (Algorithm 1, endofnode)
            self._wc[graph_name] += ac - wc
            return
        # Graph granularity: accumulate silently; only the instance's
        # completion reveals its actual demand to the task-level DVS.
        self._actual_acc[graph_name] = (
            self._actual_acc.get(graph_name, 0.0) + ac
        )
        if job_complete:
            self._wc[graph_name] = self._actual_acc[graph_name]

    # ------------------------------------------------------------------
    def utilization(self, view: SchedulerView) -> float:
        # repro: noqa[DET004] -- view.graphs is an ordered sequence
        # fixed at set construction; term order never varies
        return sum(
            self._wc.get(g.name, g.ptg.graph.total_wcet) / g.ptg.period
            for g in view.graphs
        )

    def select_speed(self, view: SchedulerView) -> float:
        if not view.has_pending_work():
            return 0.0
        return self.utilization(view)

    def hypothetical_speed(
        self, view: SchedulerView, cand: Candidate, estimate: float
    ) -> float:
        """U after ``cand``'s node would finish with ``estimate`` cycles.

        Completing the node replaces its remaining worst case by the
        estimated remaining actual, so the graph's budget shifts by
        ``estimate − wc_remaining`` (non-positive for honest estimates).
        """
        delta = (estimate - cand.wc_remaining) / cand.job.ptg.period
        return self.utilization(view) + delta

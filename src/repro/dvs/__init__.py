"""DVS frequency-setting algorithms (§4.1 of the paper)."""

from .base import FrequencySetter
from .ccedf import CcEDF
from .laedf import LaEDF
from .nodvs import NoDVS
from .static import StaticUtilization

__all__ = ["FrequencySetter", "NoDVS", "CcEDF", "LaEDF", "StaticUtilization"]

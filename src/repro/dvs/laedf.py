"""Look-ahead EDF (laEDF) extended to task graphs.

Pillai & Shin's second algorithm: instead of budgeting each task at its
(actual-adjusted) worst case across its whole period like ccEDF, laEDF
*defers* as much work as possible past the earliest deadline ``d_n``,
reserving just enough capacity after ``d_n`` for everyone's worst case,
and runs only the un-deferrable remainder ``s`` before ``d_n``:

    for tasks in reverse-EDF order (latest deadline first):
        U   = U - wc_util_i                    # stop counting WC rate
        x   = max(0, c_left_i - (1 - U)(d_i - d_n))
        U   = U + (c_left_i - x) / (d_i - d_n) # deferred work's rate
        s   = s + x
    f_ref = s / (d_n - t)

Extension to task graphs is the natural one used throughout the paper:
``c_left_i`` is the remaining worst-case cycle sum of graph *i*'s
current job (0 if it already finished), its deadline is the job's
absolute deadline (or the *next* job's, when idle), and the static rate
``wc_util_i = WC_i / D_i`` uses the whole graph's WCET.

laEDF is more aggressive than ccEDF early in a busy interval (it dips
to lower frequencies sooner) at the price of higher frequencies close
to deadlines when worst cases materialize; the paper's Table 2 uses it
for both BAS variants.

Granularity
-----------
As with :class:`~repro.dvs.ccedf.CcEDF`, ``granularity="node"`` lets
``c_left_i`` shed a node's unspent worst case the moment the node
completes (the BAS methodology's view), while ``granularity="graph"``
models the baseline laEDF row: the graph is a monolithic EDF task, so
``c_left_i`` is its WCET minus executed cycles — early node
completions release no slack until the instance ends.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import SchedulingError
from ..sim.state import Candidate, JobState, SchedulerView
from .base import FrequencySetter

__all__ = ["LaEDF"]

_EPS = 1e-12


class LaEDF(FrequencySetter):
    """Look-ahead EDF for periodic task graphs."""

    name = "laEDF"

    def __init__(self, granularity: str = "node") -> None:
        if granularity not in ("node", "graph"):
            raise SchedulingError(
                f"granularity must be 'node' or 'graph', got {granularity!r}"
            )
        self.granularity = granularity

    def _c_left(self, job: JobState) -> float:
        if self.granularity == "node":
            return job.remaining_wc()
        return job.remaining_wc_coarse()

    def select_speed(self, view: SchedulerView) -> float:
        if not view.has_pending_work():
            return 0.0
        infos = self._collect(view)
        return self._lookahead(infos, view.time)

    def hypothetical_speed(
        self, view: SchedulerView, cand: Candidate, estimate: float
    ) -> float:
        """Re-run the lookahead as if ``cand`` finished with ``estimate``
        actual cycles, the elapsed time being ``estimate / s_now``.

        When the current lookahead is (numerically) zero the processor
        would idle, so no elapsed time is attributable to running the
        candidate: the hypothetical is evaluated at the current instant
        instead of dividing by an epsilon-clamped speed, which used to
        push the evaluation point ~1e12 time units into the future and
        poison the deferred-work rates.
        """
        s_now = self.select_speed(view)
        dt = estimate / s_now if s_now > _EPS else 0.0
        infos = []
        for d, c_left, u, name in self._collect(view):
            if name == cand.graph_name:
                c_left = max(0.0, c_left - cand.wc_remaining)
            infos.append((d, c_left, u, name))
        return self._lookahead(infos, view.time + dt)

    # ------------------------------------------------------------------
    def _collect(
        self, view: SchedulerView
    ) -> List[Tuple[float, float, float, str]]:
        """(deadline, c_left, wc_utilization, name) per graph."""
        out = []
        for g in view.graphs:
            c_left = self._c_left(g.job) if g.job is not None else 0.0
            out.append(
                (g.effective_deadline(), c_left, g.ptg.utilization, g.name)
            )
        return out

    @staticmethod
    def _lookahead(
        infos: List[Tuple[float, float, float, str]], t: float
    ) -> float:
        pending = [(d, c) for d, c, _, _ in infos if c > _EPS]
        if not pending:
            return 0.0
        d_n = min(d for d, _ in pending)
        horizon = d_n - t
        if horizon <= _EPS:
            # At (or numerically past) the earliest deadline with work
            # left: demand full speed.
            return 1.0
        # repro: noqa[DET004] -- infos is built in task order above;
        # the utilization sum is order-pinned
        u = sum(u_i for _, _, u_i, _ in infos)
        s = 0.0
        # Latest deadline first (reverse EDF).
        for d_i, c_left, u_i, _ in sorted(infos, key=lambda x: -x[0]):
            u -= u_i
            span = d_i - d_n
            if span <= _EPS:
                # The earliest-deadline job itself: nothing is deferrable.
                x = c_left
            else:
                x = max(0.0, c_left - (1.0 - u) * span)
                u += (c_left - x) / span
            s += x
        return s / horizon

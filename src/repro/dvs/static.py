"""Static utilization-based frequency setting.

Runs at the constant worst-case utilization speed ``U = Σ WC_i / D_i``
whenever work is pending.  This is the classical static-optimal DVS for
periodic tasks that always take their worst case; it is used as an
ablation reference between NoDVS and the dynamic algorithms (it never
reclaims slack, so everything the dynamic schemes gain over it comes
from slack recovery).
"""

from __future__ import annotations

from typing import Optional

from ..sim.state import Candidate, SchedulerView
from .base import FrequencySetter

__all__ = ["StaticUtilization"]


class StaticUtilization(FrequencySetter):
    """Constant speed equal to the task set's worst-case utilization."""

    name = "static"

    def __init__(self) -> None:
        self._u: Optional[float] = None

    def on_sim_start(self, view: SchedulerView) -> None:
        self._u = view.task_set.utilization

    def _util(self, view: SchedulerView) -> float:
        if self._u is None:
            self._u = view.task_set.utilization
        return self._u

    def select_speed(self, view: SchedulerView) -> float:
        if not view.has_pending_work():
            return 0.0
        return self._util(view)

    def hypothetical_speed(
        self, view: SchedulerView, cand: Candidate, estimate: float
    ) -> float:
        return self._util(view)

"""Frequency-setter (DVS algorithm) interface.

A frequency setter decides the *reference speed* (normalized frequency
``fref / f_max``) at every scheduling decision point — task-graph
release and node end, exactly the paper's §4.1 hooks.  It additionally
answers *hypothetical* queries ("what would the speed be after this
candidate ran, taking its estimated cycles?") which is how the pUBS
priority function evaluates ``s_o`` and ``s_{o,k}`` in the dynamic
setting without duplicating DVS logic.

Returned speeds are *raw* — they may exceed 1 (infeasible demand, the
simulator clamps and the task set is at fault) or sit below the
hardware floor (the processor raises them to ``f_min``).  Keeping raw
values preserves the discrimination pUBS needs.
"""

from __future__ import annotations

import abc

from ..sim.state import Candidate, GraphStatus, SchedulerView

__all__ = ["FrequencySetter"]


class FrequencySetter(abc.ABC):
    """Base class for DVS frequency-setting algorithms."""

    #: Human-readable name used in experiment tables.
    name: str = "dvs"

    def on_sim_start(self, view: SchedulerView) -> None:
        """Called once before the first decision."""

    def on_release(self, view: SchedulerView, status: GraphStatus) -> None:
        """Called when a new job of ``status.ptg`` is released."""

    def on_node_end(
        self,
        view: SchedulerView,
        graph_name: str,
        node: str,
        wc: float,
        ac: float,
        job_complete: bool,
    ) -> None:
        """Called when a node finishes, revealing its actual cycles.

        ``job_complete`` is True when this node was the job's last —
        graph-granular algorithms react only to that event."""

    @abc.abstractmethod
    def select_speed(self, view: SchedulerView) -> float:
        """The reference speed to run at from now on (raw, unclamped)."""

    @abc.abstractmethod
    def hypothetical_speed(
        self, view: SchedulerView, cand: Candidate, estimate: float
    ) -> float:
        """Speed after ``cand`` hypothetically completes with ``estimate``
        actual cycles (for pUBS's ``s_{o,k}``).  Must not mutate state."""

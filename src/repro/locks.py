"""Lock-discipline runtime support for the threading broker paths.

The static analyzer (:mod:`repro.check`, rule RACE001) verifies that
shared state guarded by a ``self.lock`` is only touched inside ``with
self.lock:`` blocks — but some methods are *designed* to run with the
lock already held by their caller (e.g. every ``_TCPState`` helper in
:mod:`repro.campaign.distributed.broker`).  Statically that contract
is declared by making ``assert_held`` the method's first statement;
at runtime it is enforced by :class:`ContractLock`, which records the
holding thread and can verify holder identity on every guarded
access.

The assertion mode is opt-in via ``REPRO_CONTRACT_LOCKS=1`` (the
chaos suite and the RACE001 acceptance tests run with it set): with
the variable unset, :func:`contract_lock` returns a plain
``threading.Lock`` and :func:`assert_held` is a no-op, so production
hot paths pay nothing.
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Union

__all__ = [
    "CONTRACT_LOCKS_ENV",
    "ContractLock",
    "LockContractError",
    "assert_held",
    "contract_lock",
    "contract_locks_enabled",
]

#: Set to ``1`` (or any non-empty value other than ``0``) to make
#: :func:`contract_lock` hand out :class:`ContractLock` instances that
#: verify holder identity on every :func:`assert_held` call.
CONTRACT_LOCKS_ENV = "REPRO_CONTRACT_LOCKS"


class LockContractError(AssertionError):
    """A lock-discipline contract was violated at runtime.

    Derives from :class:`AssertionError`: a violation is a programming
    error (a data race waiting to happen), never an operational
    condition to be caught and retried.
    """


def contract_locks_enabled() -> bool:
    """Whether the env-gated runtime assertion mode is on."""
    value = os.environ.get(CONTRACT_LOCKS_ENV, "")
    return bool(value) and value != "0"


class ContractLock:
    """A ``threading.Lock`` wrapper that remembers its holder.

    Supports the same ``acquire``/``release``/context-manager surface
    as a plain lock, plus :meth:`assert_held`, which raises
    :class:`LockContractError` when the calling thread is not the
    current holder — the runtime half of the RACE001 rule.
    """

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._holder: Optional[int] = None

    def acquire(self, blocking: bool = True, timeout: float = -1):
        got = self._lock.acquire(blocking, timeout)
        if got:
            # repro: noqa[RACE001] -- written only by the thread
            # that just acquired _lock (held-by-construction)
            self._holder = threading.get_ident()
        return got

    def release(self) -> None:
        # repro: noqa[RACE001] -- cleared by the holding thread
        # before _lock is released (held-by-construction)
        self._holder = None
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "ContractLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def assert_held(self) -> None:
        """Raise unless the calling thread currently holds this lock."""
        # repro: noqa[RACE001] -- racy read is the feature: a holder
        # mismatch (even torn) means the contract is already broken
        if self._holder != threading.get_ident():
            raise LockContractError(
                f"lock contract violated: {self.name!r} must be held "
                "by the caller of this method (see RACE001 in "
                "docs/static-analysis.md)"
            )


def contract_lock(
    name: str = "lock",
) -> Union[ContractLock, threading.Lock]:
    """A lock for RACE001-guarded shared state.

    Returns a :class:`ContractLock` when ``REPRO_CONTRACT_LOCKS`` is
    set (holder-identity assertions on), else a plain
    ``threading.Lock`` (zero overhead).  The env var is read at
    construction time, so tests can flip it per broker instance.
    """
    if contract_locks_enabled():
        return ContractLock(name)
    return threading.Lock()


def assert_held(lock) -> None:
    """Declare (and, in assertion mode, verify) a caller-holds-lock
    contract.

    Placing ``assert_held(self.lock)`` as a method's first statement
    is the sanctioned static marker RACE001 recognizes for methods
    that run with the lock already held; with contract locks enabled
    it also verifies holder identity at runtime.  On a plain
    ``threading.Lock`` it is a no-op.
    """
    if isinstance(lock, ContractLock):
        lock.assert_held()

"""Execution traces recorded by the simulator.

A trace is the full record of what ran when, at which operating point,
drawing how much battery current.  It reduces to a
:class:`~repro.sim.profile.CurrentProfile` for battery evaluation and
renders as ASCII for the paper's trace figures (Figures 4 and 5).

Storage is columnar (struct-of-arrays): per-field numpy arrays grown
geometrically, with task labels interned to integer ids.  Every
reduction the experiment drivers hit per scenario — ``to_profile``,
``charge``, ``busy_time``, ``label_runs``, ``node_order``,
``idle_mask`` — is a cached O(1)-allocation numpy reduction over those
columns instead of a Python scan over dataclasses.  The segment-level
API is preserved: iteration, indexing and :meth:`busy_segments` yield
:class:`TraceSegment` views materialized on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ProfileError
from .profile import CurrentProfile

__all__ = ["TraceSegment", "ExecutionTrace", "IDLE"]

#: Label used for idle segments.
IDLE = "<idle>"


@dataclass(frozen=True)
class TraceSegment:
    """One homogeneous stretch of execution.

    Attributes
    ----------
    start, duration:
        Wall-clock placement in seconds.
    graph, node:
        What ran (``IDLE``/empty for idle time).
    speed:
        Normalized frequency in [0, 1] (0 when idle).
    voltage:
        Supply voltage of the operating point (0 when idle).
    current:
        Battery current drawn (amperes).
    """

    start: float
    duration: float
    graph: str
    node: str
    speed: float
    voltage: float
    current: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def is_idle(self) -> bool:
        return self.graph == IDLE

    @property
    def label(self) -> str:
        return IDLE if self.is_idle else f"{self.graph}.{self.node}"

    @property
    def cycles(self) -> float:
        """Work executed, in normalized cycles (seconds at f_max)."""
        return self.speed * self.duration


class ExecutionTrace:
    """An append-only, columnar sequence of contiguous segments."""

    _INITIAL_CAPACITY = 64

    def __init__(self) -> None:
        cap = self._INITIAL_CAPACITY
        self._n = 0
        self._start = np.empty(cap)
        self._duration = np.empty(cap)
        self._speed = np.empty(cap)
        self._voltage = np.empty(cap)
        self._current = np.empty(cap)
        self._label_id = np.empty(cap, dtype=np.intp)
        self._names: List[Tuple[str, str]] = []  # id -> (graph, node)
        self._name_ids: Dict[Tuple[str, str], int] = {}
        self._idle_flags: List[bool] = []  # id -> is_idle
        self._cache: Dict[str, object] = {}

    # -- recording -----------------------------------------------------
    def _grow(self) -> None:
        cap = max(2 * self._start.size, self._INITIAL_CAPACITY)
        for name in (
            "_start", "_duration", "_speed", "_voltage", "_current",
            "_label_id",
        ):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)

    def record(
        self,
        start: float,
        duration: float,
        graph: str,
        node: str,
        speed: float,
        voltage: float,
        current: float,
    ) -> None:
        """Append one segment without materializing a dataclass."""
        if duration <= 0:
            return  # zero-length dispatches carry no information
        n = self._n
        if n:
            prev_end = self._start[n - 1] + self._duration[n - 1]
            gap = start - prev_end
            if abs(gap) > 1e-6:
                raise ProfileError(
                    f"trace segments must be contiguous: previous ends at "
                    f"{prev_end:.9g}, next starts at "
                    f"{start:.9g}"
                )
        if n == self._start.size:
            self._grow()
        key = (graph, node)
        label_id = self._name_ids.get(key)
        if label_id is None:
            label_id = len(self._names)
            self._name_ids[key] = label_id
            self._names.append(key)
            self._idle_flags.append(graph == IDLE)
        self._start[n] = start
        self._duration[n] = duration
        self._speed[n] = speed
        self._voltage[n] = voltage
        self._current[n] = current
        self._label_id[n] = label_id
        self._n = n + 1
        if self._cache:
            self._cache.clear()

    def append(self, segment: TraceSegment) -> None:
        self.record(
            segment.start, segment.duration, segment.graph, segment.node,
            segment.speed, segment.voltage, segment.current,
        )

    def extend_columns(
        self,
        starts: np.ndarray,
        durations: np.ndarray,
        speeds: np.ndarray,
        voltages: np.ndarray,
        currents: np.ndarray,
        labels: np.ndarray,
        names: List[Tuple[str, str]],
    ) -> None:
        """Bulk-append pre-built columns (the vector-engine handoff).

        ``labels`` holds integer indices into ``names`` (``(graph,
        node)`` pairs; an idle row's pair is ``(IDLE, "")``).  Label
        interning follows first-occurrence order and zero-duration rows
        are dropped, so the resulting columns are bit-identical to what
        an equivalent sequence of :meth:`record` calls would have
        stored — including the contiguity guarantee, which is validated
        here with the same ``1e-6`` gap bound.
        """
        starts = np.asarray(starts, dtype=float)
        durations = np.asarray(durations, dtype=float)
        keep = durations > 0
        if not keep.all():
            starts, durations = starts[keep], durations[keep]
            speeds = np.asarray(speeds, dtype=float)[keep]
            voltages = np.asarray(voltages, dtype=float)[keep]
            currents = np.asarray(currents, dtype=float)[keep]
            labels = np.asarray(labels)[keep]
        m = starts.size
        if m == 0:
            return
        prev_ends = np.empty(m)
        prev_ends[1:] = starts[:-1] + durations[:-1]
        if self._n:
            prev_ends[0] = (
                self._start[self._n - 1] + self._duration[self._n - 1]
            )
            check = slice(0, m)
        else:
            check = slice(1, m)
        gaps = np.abs(starts[check] - prev_ends[check])
        if gaps.size and float(gaps.max()) > 1e-6:
            k = int(np.argmax(gaps)) + check.start
            raise ProfileError(
                f"trace segments must be contiguous: previous ends at "
                f"{prev_ends[k]:.9g}, next starts at "
                f"{starts[k]:.9g}"
            )
        labels = np.asarray(labels, dtype=np.intp)
        uniq, first, inv = np.unique(
            labels, return_index=True, return_inverse=True
        )
        trace_ids = np.empty(uniq.size, dtype=np.intp)
        # Intern in first-occurrence order so label ids match what the
        # per-segment record() path would have assigned.
        for pos in np.argsort(first, kind="stable"):
            key = names[int(uniq[pos])]
            label_id = self._name_ids.get(key)
            if label_id is None:
                label_id = len(self._names)
                self._name_ids[key] = label_id
                self._names.append(key)
                self._idle_flags.append(key[0] == IDLE)
            trace_ids[pos] = label_id
        while self._start.size < self._n + m:
            self._grow()
        n = self._n
        self._start[n:n + m] = starts
        self._duration[n:n + m] = durations
        self._speed[n:n + m] = speeds
        self._voltage[n:n + m] = voltages
        self._current[n:n + m] = currents
        self._label_id[n:n + m] = trace_ids[inv]
        self._n = n + m
        if self._cache:
            self._cache.clear()

    def extend_tiled(
        self, first: int, copies: int, period: float
    ) -> None:
        """Append ``copies`` time-shifted repetitions of segments
        ``[first:]`` — the steady-state fast-forward primitive.

        The block starting at index ``first`` (one detected hyperperiod
        cycle) is replicated with starts shifted by ``m * period``;
        durations, speeds, operating points, currents and labels are
        copied bitwise, so every derived reduction (charge, energy,
        busy time, label runs) is exactly what re-simulating the
        repeated cycle would have recorded.
        """
        if copies < 1:
            return
        count = self._n - first
        if count <= 0:
            raise ProfileError(
                f"cannot tile: no segments at or after index {first}"
            )
        if period <= 0:
            raise ProfileError(
                f"tile period must be > 0, got {period}"
            )
        starts = self._start[first:self._n].copy()
        durs = self._duration[first:self._n].copy()
        speeds = self._speed[first:self._n].copy()
        volts = self._voltage[first:self._n].copy()
        currents = self._current[first:self._n].copy()
        labels = self._label_id[first:self._n].copy()
        total = copies * count
        while self._start.size < self._n + total:
            self._grow()
        n = self._n
        shifts = period * np.arange(1, copies + 1)
        self._start[n:n + total] = (
            starts[None, :] + shifts[:, None]
        ).ravel()
        self._duration[n:n + total] = np.tile(durs, copies)
        self._speed[n:n + total] = np.tile(speeds, copies)
        self._voltage[n:n + total] = np.tile(volts, copies)
        self._current[n:n + total] = np.tile(currents, copies)
        self._label_id[n:n + total] = np.tile(labels, copies)
        self._n = n + total
        if self._cache:
            self._cache.clear()

    # -- columnar views ------------------------------------------------
    @property
    def starts(self) -> np.ndarray:
        return self._start[: self._n]

    @property
    def durations(self) -> np.ndarray:
        return self._duration[: self._n]

    @property
    def speeds(self) -> np.ndarray:
        return self._speed[: self._n]

    @property
    def voltages(self) -> np.ndarray:
        return self._voltage[: self._n]

    @property
    def currents(self) -> np.ndarray:
        return self._current[: self._n]

    @property
    def label_ids(self) -> np.ndarray:
        return self._label_id[: self._n]

    @property
    def idle(self) -> np.ndarray:
        """Boolean idle mask aligned with the columns (cached)."""
        mask = self._cache.get("idle")
        if mask is None:
            flags = np.asarray(self._idle_flags, dtype=bool)
            mask = (
                flags[self.label_ids]
                if flags.size
                else np.zeros(0, dtype=bool)
            )
            self._cache["idle"] = mask
        return mask

    def _label_str(self, label_id: int) -> str:
        graph, node = self._names[label_id]
        return IDLE if graph == IDLE else f"{graph}.{node}"

    def _segment(self, k: int) -> TraceSegment:
        graph, node = self._names[self._label_id[k]]
        return TraceSegment(
            float(self._start[k]),
            float(self._duration[k]),
            graph,
            node,
            float(self._speed[k]),
            float(self._voltage[k]),
            float(self._current[k]),
        )

    # -- sequence API --------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __iter__(self):
        for k in range(self._n):
            yield self._segment(k)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self._segment(k) for k in range(*i.indices(self._n))]
        k = i.__index__()
        if k < 0:
            k += self._n
        if not (0 <= k < self._n):
            raise IndexError("trace index out of range")
        return self._segment(k)

    @property
    def end_time(self) -> float:
        if not self._n:
            return 0.0
        return float(self._start[self._n - 1] + self._duration[self._n - 1])

    # ------------------------------------------------------------------
    def busy_segments(self) -> Tuple[TraceSegment, ...]:
        return tuple(
            self._segment(int(k)) for k in np.flatnonzero(~self.idle)
        )

    @staticmethod
    def _seq_sum(values: np.ndarray) -> float:
        """Strict left-to-right float accumulation (``cumsum`` is
        sequential, unlike the pairwise ``np.sum``) — bit-identical to
        the Python ``sum`` loop this storage replaced, which the golden
        trace fixtures pin exactly."""
        if values.size == 0:
            return 0.0
        return float(np.cumsum(values)[-1])

    def busy_time(self) -> float:
        out = self._cache.get("busy_time")
        if out is None:
            out = self._seq_sum(self.durations[~self.idle])
            self._cache["busy_time"] = out
        return out

    def executed_cycles(self) -> float:
        out = self._cache.get("executed_cycles")
        if out is None:
            busy = ~self.idle
            out = self._seq_sum(
                self.speeds[busy] * self.durations[busy]
            )
            self._cache["executed_cycles"] = out
        return out

    def charge(self) -> float:
        """Total battery charge drawn (coulombs)."""
        out = self._cache.get("charge")
        if out is None:
            out = self._seq_sum(self.currents * self.durations)
            self._cache["charge"] = out
        return out

    def energy(self, v_bat: float) -> float:
        """Battery-side energy in joules for terminal voltage ``v_bat``."""
        return self.charge() * v_bat

    def node_order(self) -> Tuple[str, ...]:
        """Distinct task labels in first-execution order (idle skipped)."""
        ids = self.label_ids[~self.idle]
        if ids.size == 0:
            return ()
        uniq, first = np.unique(ids, return_index=True)
        order = np.argsort(first)
        return tuple(self._label_str(int(uniq[k])) for k in order)

    def completion_order(self) -> Tuple[str, ...]:
        """Task labels ordered by the end of their *last* segment."""
        busy = ~self.idle
        ids = self.label_ids[busy]
        if ids.size == 0:
            return ()
        ends = (self.starts + self.durations)[busy]
        uniq, first = np.unique(ids, return_index=True)
        _, rev_idx = np.unique(ids[::-1], return_index=True)
        last_end = ends[ids.size - 1 - rev_idx]
        # First-occurrence order, then a stable sort by last end time —
        # the same tuple the label -> last-end dict scan produced.
        first_order = np.argsort(first)
        by_end = np.argsort(last_end[first_order], kind="stable")
        return tuple(
            self._label_str(int(uniq[first_order[k]])) for k in by_end
        )

    # ------------------------------------------------------------------
    def to_profile(self, *, merge: bool = True) -> CurrentProfile:
        """The battery-facing current profile of this trace."""
        if not self._n:
            raise ProfileError("empty trace has no profile")
        prof = CurrentProfile(self.durations.copy(), self.currents.copy())
        return prof.merged() if merge else prof

    def idle_mask(self) -> np.ndarray:
        """Boolean mask aligned with the *unmerged* profile segments."""
        return self.idle.copy()

    def label_runs(self) -> Tuple[Tuple[float, float, str, float, bool], ...]:
        """Consecutive same-label segments coalesced.

        Returns ``(start, duration, label, mean_current, is_idle)``
        tuples.  A run is one uninterrupted stretch of a task (or of
        idleness); within a run the two-level frequency mix may toggle
        the instantaneous current, but the run's *mean* current tracks
        the reference frequency — the quantity battery guideline 1
        constrains.
        """
        if not self._n:
            return ()
        ids = self.label_ids
        head = np.concatenate(
            [[0], np.flatnonzero(ids[1:] != ids[:-1]) + 1]
        )
        run_dur = np.add.reduceat(self.durations, head)
        run_charge = np.add.reduceat(
            self.durations * self.currents, head
        )
        idle = self.idle
        return tuple(
            (
                float(self.starts[j]),
                float(run_dur[k]),
                self._label_str(int(ids[j])),
                float(run_charge[k] / run_dur[k]),
                bool(idle[j]),
            )
            for k, j in enumerate(head)
        )

    # ------------------------------------------------------------------
    def render_ascii(
        self, *, width: int = 72, until: Optional[float] = None
    ) -> str:
        """A compact timeline like the paper's Figure 4/5 traces.

        One row per distinct label; columns are time bins; a cell shows
        a block if the label ran for the majority of that bin.
        """
        horizon = until if until is not None else self.end_time
        if horizon <= 0:
            return "(empty trace)"
        labels = []
        for s in self:
            if s.label not in labels:
                labels.append(s.label)
        bin_w = horizon / width
        rows = {lab: [" "] * width for lab in labels}
        for s in self:
            b0 = int(np.clip(s.start / bin_w, 0, width - 1))
            b1 = int(np.clip(np.ceil(s.end / bin_w), 1, width))
            for b in range(b0, b1):
                rows[s.label][b] = "#" if not s.is_idle else "."
        name_w = max(len(lab) for lab in labels)
        lines = [
            f"{lab.rjust(name_w)} |{''.join(rows[lab])}|" for lab in labels
        ]
        axis = f"{'t'.rjust(name_w)}  0{' ' * (width - 8)}{horizon:.4g}"
        return "\n".join(lines + [axis])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionTrace(segments={len(self)}, end={self.end_time:.6g}s, "
            f"busy={self.busy_time():.6g}s)"
        )

"""Execution traces recorded by the simulator.

A trace is the full record of what ran when, at which operating point,
drawing how much battery current.  It reduces to a
:class:`~repro.sim.profile.CurrentProfile` for battery evaluation and
renders as ASCII for the paper's trace figures (Figures 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ProfileError
from .profile import CurrentProfile

__all__ = ["TraceSegment", "ExecutionTrace", "IDLE"]

#: Label used for idle segments.
IDLE = "<idle>"


@dataclass(frozen=True)
class TraceSegment:
    """One homogeneous stretch of execution.

    Attributes
    ----------
    start, duration:
        Wall-clock placement in seconds.
    graph, node:
        What ran (``IDLE``/empty for idle time).
    speed:
        Normalized frequency in [0, 1] (0 when idle).
    voltage:
        Supply voltage of the operating point (0 when idle).
    current:
        Battery current drawn (amperes).
    """

    start: float
    duration: float
    graph: str
    node: str
    speed: float
    voltage: float
    current: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def is_idle(self) -> bool:
        return self.graph == IDLE

    @property
    def label(self) -> str:
        return IDLE if self.is_idle else f"{self.graph}.{self.node}"

    @property
    def cycles(self) -> float:
        """Work executed, in normalized cycles (seconds at f_max)."""
        return self.speed * self.duration


class ExecutionTrace:
    """An append-only sequence of contiguous :class:`TraceSegment`."""

    def __init__(self) -> None:
        self._segments: List[TraceSegment] = []

    def append(self, segment: TraceSegment) -> None:
        if segment.duration <= 0:
            return  # zero-length dispatches carry no information
        if self._segments:
            gap = segment.start - self._segments[-1].end
            if abs(gap) > 1e-6:
                raise ProfileError(
                    f"trace segments must be contiguous: previous ends at "
                    f"{self._segments[-1].end:.9g}, next starts at "
                    f"{segment.start:.9g}"
                )
        self._segments.append(segment)

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self):
        return iter(self._segments)

    def __getitem__(self, i):
        return self._segments[i]

    @property
    def end_time(self) -> float:
        return self._segments[-1].end if self._segments else 0.0

    # ------------------------------------------------------------------
    def busy_segments(self) -> Tuple[TraceSegment, ...]:
        return tuple(s for s in self._segments if not s.is_idle)

    def busy_time(self) -> float:
        return sum(s.duration for s in self._segments if not s.is_idle)

    def executed_cycles(self) -> float:
        return sum(s.cycles for s in self._segments if not s.is_idle)

    def charge(self) -> float:
        """Total battery charge drawn (coulombs)."""
        return sum(s.current * s.duration for s in self._segments)

    def energy(self, v_bat: float) -> float:
        """Battery-side energy in joules for terminal voltage ``v_bat``."""
        return self.charge() * v_bat

    def node_order(self) -> Tuple[str, ...]:
        """Distinct task labels in first-execution order (idle skipped)."""
        seen = []
        for s in self._segments:
            if not s.is_idle and (not seen or seen[-1] != s.label):
                seen.append(s.label)
        out: List[str] = []
        for label in seen:
            if label not in out:
                out.append(label)
        return tuple(out)

    def completion_order(self) -> Tuple[str, ...]:
        """Task labels ordered by the end of their *last* segment."""
        last_end = {}
        for s in self._segments:
            if not s.is_idle:
                last_end[s.label] = s.end
        return tuple(sorted(last_end, key=last_end.get))

    # ------------------------------------------------------------------
    def to_profile(self, *, merge: bool = True) -> CurrentProfile:
        """The battery-facing current profile of this trace."""
        if not self._segments:
            raise ProfileError("empty trace has no profile")
        prof = CurrentProfile.from_segments(
            (s.duration, s.current) for s in self._segments
        )
        return prof.merged() if merge else prof

    def idle_mask(self) -> np.ndarray:
        """Boolean mask aligned with the *unmerged* profile segments."""
        return np.array(
            [s.is_idle for s in self._segments if s.duration > 0], dtype=bool
        )

    def label_runs(self) -> Tuple[Tuple[float, float, str, float, bool], ...]:
        """Consecutive same-label segments coalesced.

        Returns ``(start, duration, label, mean_current, is_idle)``
        tuples.  A run is one uninterrupted stretch of a task (or of
        idleness); within a run the two-level frequency mix may toggle
        the instantaneous current, but the run's *mean* current tracks
        the reference frequency — the quantity battery guideline 1
        constrains.
        """
        runs: List[List] = []
        for s in self._segments:
            if runs and runs[-1][2] == s.label:
                runs[-1][1] += s.duration
                runs[-1][3] += s.current * s.duration
            else:
                runs.append(
                    [s.start, s.duration, s.label,
                     s.current * s.duration, s.is_idle]
                )
        return tuple(
            (r[0], r[1], r[2], r[3] / r[1], r[4]) for r in runs if r[1] > 0
        )

    # ------------------------------------------------------------------
    def render_ascii(
        self, *, width: int = 72, until: Optional[float] = None
    ) -> str:
        """A compact timeline like the paper's Figure 4/5 traces.

        One row per distinct label; columns are time bins; a cell shows
        a block if the label ran for the majority of that bin.
        """
        horizon = until if until is not None else self.end_time
        if horizon <= 0:
            return "(empty trace)"
        labels = []
        for s in self._segments:
            if s.label not in labels:
                labels.append(s.label)
        bin_w = horizon / width
        rows = {lab: [" "] * width for lab in labels}
        for s in self._segments:
            b0 = int(np.clip(s.start / bin_w, 0, width - 1))
            b1 = int(np.clip(np.ceil(s.end / bin_w), 1, width))
            for b in range(b0, b1):
                rows[s.label][b] = "#" if not s.is_idle else "."
        name_w = max(len(lab) for lab in labels)
        lines = [
            f"{lab.rjust(name_w)} |{''.join(rows[lab])}|" for lab in labels
        ]
        axis = f"{'t'.rjust(name_w)}  0{' ' * (width - 8)}{horizon:.4g}"
        return "\n".join(lines + [axis])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionTrace(segments={len(self)}, end={self.end_time:.6g}s, "
            f"busy={self.busy_time():.6g}s)"
        )

"""Event-driven simulation: engine, traces, current profiles."""

from .batch import BatchItem, BatchOutcome, ScenarioBatch
from .engine import (
    ActualsProvider,
    DeadlineMiss,
    SimulationResult,
    Simulator,
    worst_case_actuals,
)
from .profile import CurrentProfile
from .state import Candidate, GraphStatus, JobState, SchedulerView
from .trace import IDLE, ExecutionTrace, TraceSegment
from .vector import VectorEngine, run_vectorized

__all__ = [
    "Simulator",
    "SimulationResult",
    "DeadlineMiss",
    "BatchItem",
    "BatchOutcome",
    "ScenarioBatch",
    "VectorEngine",
    "run_vectorized",
    "ActualsProvider",
    "worst_case_actuals",
    "CurrentProfile",
    "ExecutionTrace",
    "TraceSegment",
    "IDLE",
    "JobState",
    "GraphStatus",
    "SchedulerView",
    "Candidate",
]

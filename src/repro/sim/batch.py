"""Batched multi-scenario simulation with one-pass battery hand-off.

A campaign evaluates thousands of small independent scenarios, each of
which is "simulate a schedule, reduce its trace to a current profile,
tile that profile through a battery model".  :class:`ScenarioBatch`
drives that pipeline for many scenarios at once:

* every scenario's engine run gets the steady-state fast path
  (:meth:`repro.sim.engine.Simulator.run` with ``fast=True``), so the
  per-event Python loop only executes until the dispatch cycle
  converges;
* the resulting columnar :class:`~repro.sim.trace.ExecutionTrace`
  profiles are reduced and handed to the vectorized battery kernels in
  a single call
  (:func:`repro.battery.kernels.run_profile_batch`), keeping the
  battery side a few large vector ops per scenario instead of a
  per-segment scalar walk.

The batch is *semantics-preserving*: each scenario's outcome is
exactly what running it alone would produce (the engine fast path
guarantees count/label equivalence and ulp-level charge equivalence;
the battery hand-off is bit-identical to the per-scenario call).  The
campaign layer (:class:`repro.campaign.runner.CampaignRunner` with
``sim_batch > 1``) builds batches from scenario specs; this module
stays campaign-agnostic so studies can drive it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..battery.base import BatteryModel, BatteryRun
from ..battery.kernels import run_profile_batch
from ..errors import SchedulingError
from .engine import SimulationResult, Simulator
from .profile import CurrentProfile
from .vector import VectorEngine

__all__ = ["BatchItem", "BatchOutcome", "ScenarioBatch"]


@dataclass
class BatchItem:
    """One scenario of a batch.

    ``battery`` (optional) is tiled with the scenario's merged —
    optionally ``rebin``-ned — current profile until the cell dies,
    mirroring :func:`repro.analysis.lifetime.evaluate_lifetime`.
    """

    simulator: Simulator
    horizon: float
    battery: Optional[BatteryModel] = None
    rebin: Optional[float] = None


@dataclass
class BatchOutcome:
    """What one scenario produced.

    ``profile`` is the merged (un-rebinned) current profile of the
    trace — the object scenario metrics (peak current) are read from;
    ``battery_run`` is present iff the item carried a battery model.
    """

    result: SimulationResult
    profile: CurrentProfile
    battery_run: Optional[BatteryRun]


class ScenarioBatch:
    """Advance many independent scenarios and evaluate them together.

    Parameters
    ----------
    items:
        The scenarios; at least one is required (the battery hand-off
        needs a non-empty batch — for a pure simulation sweep that may
        be empty, call :func:`repro.sim.vector.run_vectorized`).
    engine:
        ``"scalar"`` (default) runs each scenario through
        :meth:`Simulator.run`; ``"vector"`` routes the batch through
        the struct-of-arrays :class:`~repro.sim.vector.VectorEngine`,
        which advances all array-expressible scenarios lock-step —
        the full Table 2 grid, stochastic hash-keyed actuals
        included — and falls back per scenario to the scalar engine
        for anything it cannot express (phases, call-order-dependent
        providers, subclassed components) — results are identical
        either way.
    """

    def __init__(
        self,
        items: Sequence[BatchItem],
        *,
        engine: str = "scalar",
    ) -> None:
        self.items: List[BatchItem] = list(items)
        if not self.items:
            raise SchedulingError("a scenario batch needs >= 1 item")
        if engine not in ("scalar", "vector"):
            raise SchedulingError(
                f"engine must be 'scalar' or 'vector', got {engine!r}"
            )
        self.engine = engine
        #: Telemetry from the most recent :meth:`run`:
        #: ``numeric_demotions`` counts scenarios (or battery loads)
        #: whose fast-path output contained NaN/inf and was recomputed
        #: through the scalar path; ``vector_fallbacks`` counts
        #: scenarios the vector engine handed to the scalar engine for
        #: any reason.  Empty until :meth:`run` is called.
        self.last_stats: Dict[str, int] = {}

    def run(
        self,
        *,
        fast: bool = True,
        max_time: float = 1e7,
        battery_fast: bool = True,
    ) -> List[BatchOutcome]:
        """Run every scenario; outcomes come back in item order.

        ``fast`` enables the engine's steady-state fast-forward (safe:
        it degrades to the naive event loop whenever it cannot be
        exact); ``max_time`` and ``battery_fast`` are forwarded to the
        battery evaluation and match
        :func:`~repro.analysis.lifetime.evaluate_lifetime` defaults.
        """
        stats: Dict[str, int] = {
            "numeric_demotions": 0,
            "vector_fallbacks": 0,
        }
        if self.engine == "vector":
            vec = VectorEngine(
                [(item.simulator, item.horizon) for item in self.items]
            )
            results = vec.run(fast=fast)
            stats["numeric_demotions"] += vec.numeric_demotions
            stats["vector_fallbacks"] = vec.n_fallback
        else:
            results = [
                item.simulator.run(item.horizon, fast=fast)
                for item in self.items
            ]
        profiles = [res.profile() for res in results]
        loads = []
        load_pos: List[int] = []
        for k, (item, prof) in enumerate(zip(self.items, profiles)):
            if item.battery is None:
                continue
            p = prof.rebinned(item.rebin) if item.rebin is not None else prof
            loads.append((item.battery, p.durations, p.currents))
            load_pos.append(k)
        runs = run_profile_batch(
            loads,
            repeat=None,
            max_time=max_time,
            fast=battery_fast,
            stats=stats,
        )
        self.last_stats = stats
        by_item = dict(zip(load_pos, runs))
        return [
            BatchOutcome(res, prof, by_item.get(k))
            for k, (res, prof) in enumerate(zip(results, profiles))
        ]

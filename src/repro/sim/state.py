"""Runtime state of periodic task-graph jobs, and the scheduler view.

The simulator owns mutable :class:`JobState` objects (one per released,
possibly in-progress job).  DVS algorithms and priority functions see
them through the read-only :class:`SchedulerView`, which is also what
makes the methodology pluggable: any frequency setter / priority
function works against this one interface (§4's "can be used with
little or no changes with any frequency setting algorithm and any
priority function").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Set, Tuple

from ..errors import SchedulingError
from ..taskgraph.periodic import PeriodicTaskGraph, TaskGraphSet

__all__ = ["JobState", "GraphStatus", "SchedulerView", "Candidate"]


def _actual_tol(wc: float) -> float:
    """Validation slack for comparing actual cycles against a WCET.

    Relative to the node's own scale: an absolute 1e-12 slack is below
    one ulp once WCETs reach ~1e12 cycles, rejecting valid worst-case
    draws (``ac == wc`` after rounding).  The floor keeps sub-unit
    WCETs on the old absolute tolerance.
    """
    return 1e-12 * max(1.0, abs(wc))


class JobState:
    """One released job (instance) of a periodic task graph.

    Tracks per-node actual cycle demands (drawn at release by the
    workload's actual-computation provider), executed cycles, and the
    completed set.  Cycles are normalized: 1 cycle = 1 second at f_max.
    """

    def __init__(
        self,
        ptg: PeriodicTaskGraph,
        job_index: int,
        release: float,
        actual: Mapping[str, float],
    ) -> None:
        self.ptg = ptg
        self.job_index = job_index
        self.release = release
        self.abs_deadline = release + ptg.deadline
        graph = ptg.graph
        self.actual: Dict[str, float] = {}
        for name in graph.node_names:
            try:
                ac = float(actual[name])
            except KeyError:
                raise SchedulingError(
                    f"job of {ptg.name!r}: no actual cycles for node {name!r}"
                ) from None
            wc = graph.wcet(name)
            if not (0 < ac <= wc + _actual_tol(wc)):
                raise SchedulingError(
                    f"job of {ptg.name!r}: actual cycles {ac!r} of node "
                    f"{name!r} must be in (0, wcet={wc!r}]"
                )
            self.actual[name] = min(ac, wc)
        self.executed: Dict[str, float] = {n: 0.0 for n in graph.node_names}
        self.completed: Set[str] = set()

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.ptg.name

    @property
    def graph(self):
        return self.ptg.graph

    def is_complete(self) -> bool:
        return len(self.completed) == len(self.graph)

    def remaining_wc_node(self, node: str) -> float:
        """Worst-case cycles the node may still need."""
        if node in self.completed:
            return 0.0
        return max(0.0, self.graph.wcet(node) - self.executed[node])

    def remaining_ac_node(self, node: str) -> float:
        """Actual cycles the node still needs (simulator's ground truth)."""
        if node in self.completed:
            return 0.0
        return max(0.0, self.actual[node] - self.executed[node])

    def remaining_wc(self) -> float:
        """Remaining worst-case work of the whole job (the DVS ``c_left``).

        Node-granular: a node that completed below its WCET contributes
        nothing — its slack is visible immediately (the paper's
        Algorithm 1 / BAS view).
        """
        # repro: noqa[DET004] -- node_names is the graph's frozen
        # topological order; sum order is part of the trace contract
        return sum(
            self.remaining_wc_node(n)
            for n in self.graph.node_names
            if n not in self.completed
        )

    def remaining_wc_coarse(self) -> float:
        """Graph-granular remaining worst case: WCET sum minus executed
        cycles, ignoring node boundaries.

        This is what a task-level DVS algorithm sees when the whole
        graph is presented to it as one monolithic EDF task (the
        baseline ccEDF/laEDF rows of Table 2): a node finishing early
        releases no slack until the *instance* completes, because the
        scheduler cannot observe node completions.
        """
        if self.is_complete():
            return 0.0
        # repro: noqa[DET004] -- executed is insertion-ordered by
        # first execution; the golden traces pin that order
        executed = sum(self.executed.values())
        return max(0.0, self.graph.total_wcet - executed)

    def ready_nodes(self) -> Tuple[str, ...]:
        """Incomplete nodes whose predecessors have all completed."""
        return self.graph.ready_after(self.completed)

    def advance_node(self, node: str, cycles: float) -> bool:
        """Execute ``cycles`` on ``node``; returns True if it completed."""
        if node in self.completed:
            raise SchedulingError(
                f"job of {self.name!r}: node {node!r} already complete"
            )
        self.executed[node] += cycles
        if self.executed[node] >= self.actual[node] - 1e-9:
            self.executed[node] = self.actual[node]
            self.completed.add(node)
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobState({self.name!r}#{self.job_index}, "
            f"done={len(self.completed)}/{len(self.graph)}, "
            f"deadline={self.abs_deadline:.6g})"
        )


@dataclass(frozen=True)
class GraphStatus:
    """Per-graph scheduling status exposed to DVS algorithms.

    ``job`` is the currently released *incomplete* job, or ``None`` if
    the graph's last job finished (or it has not been released yet);
    ``next_release`` is the next release instant either way.
    """

    ptg: PeriodicTaskGraph
    job: Optional[JobState]
    next_release: float

    @property
    def name(self) -> str:
        return self.ptg.name

    def effective_deadline(self) -> float:
        """The job's deadline, or the *next* job's deadline if idle.

        This is what laEDF's lookahead reserves capacity against for
        graphs whose current instance already finished.
        """
        if self.job is not None:
            return self.job.abs_deadline
        return self.next_release + self.ptg.deadline


@dataclass(frozen=True)
class Candidate:
    """A schedulable (job, node) pair offered to the priority function.

    Attributes
    ----------
    job, node:
        The ready task.
    wc_full:
        The node's full WCET (cycles).
    wc_remaining:
        Worst-case cycles still to run (WCET minus executed).
    executed:
        Cycles already run on this node (non-zero after preemption).
    actual_remaining:
        Ground-truth remaining cycles — available to the
        :class:`~repro.core.estimator.OracleEstimator` only; honest
        estimators must not read it.
    """

    job: JobState
    node: str
    wc_full: float
    wc_remaining: float
    executed: float
    actual_remaining: float

    @property
    def graph_name(self) -> str:
        return self.job.name

    @property
    def label(self) -> str:
        return f"{self.job.name}.{self.node}"

    @property
    def deadline(self) -> float:
        return self.job.abs_deadline


class SchedulerView:
    """Read-only snapshot the scheduler stack works against."""

    def __init__(
        self,
        task_set: TaskGraphSet,
        time: float,
        statuses: Sequence[GraphStatus],
    ) -> None:
        self.task_set = task_set
        self.time = float(time)
        self.graphs: Tuple[GraphStatus, ...] = tuple(statuses)

    def active_jobs(self) -> Tuple[JobState, ...]:
        """Released incomplete jobs in EDF order (deadline, then name)."""
        jobs = [g.job for g in self.graphs if g.job is not None]
        return tuple(sorted(jobs, key=lambda j: (j.abs_deadline, j.name)))

    def has_pending_work(self) -> bool:
        return any(g.job is not None for g in self.graphs)

    def earliest_deadline(self) -> Optional[float]:
        jobs = self.active_jobs()
        return jobs[0].abs_deadline if jobs else None

    def candidates_of(self, job: JobState) -> Tuple[Candidate, ...]:
        out = []
        for node in job.ready_nodes():
            out.append(
                Candidate(
                    job=job,
                    node=node,
                    wc_full=job.graph.wcet(node),
                    wc_remaining=job.remaining_wc_node(node),
                    executed=job.executed[node],
                    actual_remaining=job.remaining_ac_node(node),
                )
            )
        return tuple(out)

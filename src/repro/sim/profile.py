"""Piecewise-constant load-current profiles.

The interface between the scheduling world and the battery world: a
schedule's execution trace reduces to a :class:`CurrentProfile` — what
the battery sees.  Profiles support merging of equal-current runs,
tiling, rebinning to a coarser grid (a large speedup for slot-based
battery models with no visible accuracy cost when the bin is far below
the battery's kinetic time constant), and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..errors import ProfileError

__all__ = ["CurrentProfile"]


@dataclass(frozen=True)
class CurrentProfile:
    """An immutable piecewise-constant current profile.

    Attributes
    ----------
    durations:
        Segment lengths in seconds (> 0).
    currents:
        Segment currents in amperes (>= 0).
    """

    durations: np.ndarray
    currents: np.ndarray

    def __post_init__(self) -> None:
        d = np.asarray(self.durations, dtype=float)
        i = np.asarray(self.currents, dtype=float)
        if d.ndim != 1 or i.ndim != 1 or d.shape != i.shape:
            raise ProfileError(
                f"durations/currents must be equal-length 1-D, got "
                f"{d.shape} vs {i.shape}"
            )
        if d.size == 0:
            raise ProfileError("profile needs at least one segment")
        if np.any(d <= 0):
            raise ProfileError("segment durations must be > 0")
        if np.any(i < 0):
            raise ProfileError("currents must be >= 0")
        object.__setattr__(self, "durations", d)
        object.__setattr__(self, "currents", i)

    # ------------------------------------------------------------------
    @classmethod
    def from_segments(
        cls, segments: Iterable[Tuple[float, float]]
    ) -> "CurrentProfile":
        """Build from ``(duration, current)`` pairs, dropping empty ones."""
        pairs = [(d, c) for d, c in segments if d > 0]
        if not pairs:
            raise ProfileError("no non-empty segments")
        d, c = zip(*pairs)
        return cls(np.array(d, dtype=float), np.array(c, dtype=float))

    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        return float(self.durations.sum())

    @property
    def total_charge(self) -> float:
        """Coulombs drawn over one pass of the profile."""
        return float(np.dot(self.durations, self.currents))

    @property
    def mean_current(self) -> float:
        return self.total_charge / self.total_time

    @property
    def peak_current(self) -> float:
        return float(self.currents.max())

    def boundaries(self) -> np.ndarray:
        """Segment end times, starting from 0 (length = n_segments + 1)."""
        return np.concatenate([[0.0], np.cumsum(self.durations)])

    def __len__(self) -> int:
        return int(self.durations.size)

    # ------------------------------------------------------------------
    def merged(self, rtol: float = 1e-12) -> "CurrentProfile":
        """Coalesce adjacent segments with (numerically) equal current."""
        d, c = self.durations, self.currents
        if len(d) == 1:
            return self
        close = np.abs(np.diff(c)) <= rtol * np.maximum(
            1.0, np.abs(c[:-1])
        )
        if not np.any(close):
            return self  # nothing adjacent is mergeable
        if np.all(c[1:][close] == c[:-1][close]):
            # Every mergeable pair is *exactly* equal (the common case:
            # the engine repeats operating-point currents bit-for-bit),
            # so the sequential tolerance anchor can never drift and
            # merging is a plain group-by-equal-runs reduction.
            head = np.concatenate(
                [[0], np.flatnonzero(c[1:] != c[:-1]) + 1]
            )
            return CurrentProfile(
                np.add.reduceat(d, head), c[head].copy()
            )
        # Tolerance-window merges: keep the sequential reference walk,
        # whose anchor is the first current of each merged run.
        out_d = [float(d[0])]
        out_c = [float(c[0])]
        for k in range(1, len(d)):
            if abs(c[k] - out_c[-1]) <= rtol * max(1.0, abs(out_c[-1])):
                out_d[-1] += float(d[k])
            else:
                out_d.append(float(d[k]))
                out_c.append(float(c[k]))
        return CurrentProfile(np.array(out_d), np.array(out_c))

    def tiled(self, repeats: int) -> "CurrentProfile":
        """The profile repeated ``repeats`` times back to back."""
        if repeats < 1:
            raise ProfileError(f"repeats must be >= 1, got {repeats}")
        return CurrentProfile(
            np.tile(self.durations, repeats), np.tile(self.currents, repeats)
        )

    def rebinned(self, bin_width: float) -> "CurrentProfile":
        """Resample onto a uniform grid, preserving charge exactly.

        Each bin's current is the charge-weighted average over the bin;
        total charge is conserved to floating-point accuracy (property
        tested).  Use a ``bin_width`` well below the battery's kinetic
        time constant; the last bin may be shorter.
        """
        if bin_width <= 0:
            raise ProfileError(f"bin_width must be > 0, got {bin_width}")
        total = self.total_time
        edges = np.arange(0.0, total, bin_width)
        edges = np.append(edges, total)
        if len(edges) < 2:
            return CurrentProfile(
                np.array([total]), np.array([self.mean_current])
            )
        # Cumulative charge at arbitrary times via interpolation of the
        # piecewise-linear cumulative-charge function.
        bounds = self.boundaries()
        cum_charge = np.concatenate(
            [[0.0], np.cumsum(self.durations * self.currents)]
        )
        charge_at = np.interp(edges, bounds, cum_charge)
        bin_charge = np.diff(charge_at)
        bin_width_actual = np.diff(edges)
        return CurrentProfile(bin_width_actual, bin_charge / bin_width_actual)

    def concat(self, other: "CurrentProfile") -> "CurrentProfile":
        return CurrentProfile(
            np.concatenate([self.durations, other.durations]),
            np.concatenate([self.currents, other.currents]),
        )

    def add(
        self, other: "CurrentProfile", rtol: float = 1e-9
    ) -> "CurrentProfile":
        """Pointwise sum of two equal-length profiles.

        Models several loads sharing one battery (e.g. the processors
        of a multiprocessor platform): the cell sees the sum of the
        individual currents.  Segment boundaries are merged, so the
        result is exact, not resampled.
        """
        if abs(self.total_time - other.total_time) > rtol * max(
            self.total_time, other.total_time
        ):
            raise ProfileError(
                f"profiles must cover the same span to be added: "
                f"{self.total_time:.9g}s vs {other.total_time:.9g}s"
            )
        edges = np.union1d(self.boundaries(), other.boundaries())
        # Guard against float dust creating zero-width slivers.
        edges = edges[np.concatenate([[True], np.diff(edges) > 1e-12])]
        mids = 0.5 * (edges[:-1] + edges[1:])

        def sample(p: "CurrentProfile") -> np.ndarray:
            idx = np.clip(
                np.searchsorted(p.boundaries(), mids, side="right") - 1,
                0,
                len(p) - 1,
            )
            return p.currents[idx]

        return CurrentProfile(
            np.diff(edges), sample(self) + sample(other)
        )

    # ------------------------------------------------------------------
    def is_locally_non_increasing(
        self,
        instance_boundaries: Sequence[float],
        *,
        ignore: Sequence[bool] = (),
        atol: float = 1e-9,
    ) -> bool:
        """Check battery guideline 1 on a trace.

        ``instance_boundaries`` are the times (e.g. task-graph releases)
        at which the current is allowed to step *up*; between two
        consecutive boundaries the profile must be non-increasing.
        ``ignore`` optionally marks segments (e.g. idle slots) that
        neither violate the staircase nor lower the ceiling for later
        segments — the guideline constrains the voltage/clock staircase
        of *busy* intervals, and an idle dip never hurts the battery.
        """
        mask = np.zeros(len(self), dtype=bool)
        if len(ignore):
            mask[: len(ignore)] = np.asarray(ignore, dtype=bool)[: len(self)]
        seg_start = self.boundaries()[:-1]
        marks = sorted(set(float(b) for b in instance_boundaries))
        mark_idx = 0
        ceiling = np.inf
        for k in range(len(self)):
            t0 = seg_start[k]
            while mark_idx < len(marks) and marks[mark_idx] <= t0 + atol:
                ceiling = np.inf  # reset at an instance boundary
                mark_idx += 1
            if mask[k]:
                continue
            cur = self.currents[k]
            if cur > ceiling + atol:
                return False
            ceiling = min(ceiling, cur)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CurrentProfile(segments={len(self)}, "
            f"T={self.total_time:.6g}s, mean={self.mean_current:.4g}A, "
            f"peak={self.peak_current:.4g}A)"
        )

"""Struct-of-arrays vector engine: N scenarios per numpy pass.

:class:`VectorEngine` runs many *independent* scenarios lock-step: all
per-scenario scheduler state (release clocks, job progress, DVS
budgets, frequency tables) lives in ``(N, ...)`` numpy arrays, and one
"round" of the engine advances every live scenario to its own next
event with a fixed sequence of vectorized passes — releases, deadline
checks, speed selection, the two-adjacent-level mix, candidate
selection and dispatch.  Scenarios are independent, so no cross-
scenario event ordering is needed; *within* a scenario every float is
produced by the same IEEE-754 expression tree as the scalar event loop
in :mod:`repro.sim.engine`, which makes the vector results bit-
identical to ``Simulator.run`` (counts, labels, misses, release
clocks; trace columns bitwise).

Supported configurations (everything expressible as array ops):

* DVS: ``NoDVS``, ``StaticUtilization``, ``CcEDF``, ``LaEDF`` (the
  lookahead runs as a batched reverse-EDF reduction; both
  granularities each)
* priority: ``RandomPriority`` (exact RNG replay), ``LTF``, ``STF``,
  ``PUBS`` with any registry estimator (worst-case, scaled, history,
  oracle)
* ready list: ``MOST_IMMINENT`` or ``ALL_RELEASED``, with or without
  the Algorithm 2 feasibility guard (a vectorized prefix-scan over the
  EDF-ordered active jobs)
* processor: plain :class:`~repro.processor.platform.Processor` with a
  pure :class:`~repro.processor.power.PowerModel` (``mix`` or
  ``quantize`` speed policy)
* actuals providers declaring ``job_invariant`` (constant per node) or
  ``job_keyed`` (each draw a pure hash-keyed function of
  ``(graph, node, job_index)``, e.g.
  :class:`~repro.workloads.generator.UniformActuals` — per-job tables
  are pre-drawn at compile time); all phases zero

Anything else — subclassed components, custom power models or
estimators, non-zero phases, actuals providers with call-order state —
falls back *per scenario* to the scalar engine, exactly like the
opportunistic ``fast=True`` pattern: requesting the vector engine is
always safe.
A scenario may also be demoted mid-run (e.g. a deadline miss under
``on_miss='raise'``); demoted scenarios are re-run scalar from scratch
in item order, so exceptions propagate exactly as a scalar batch would
raise them.

The hyperperiod fast-forward composes: pre-convergence cycles are
simulated vectorized, steady state is detected per scenario with the
same fingerprint/cycle-match rules as the scalar engine, and the
remaining horizon is tiled from the converged cycle's columnar trace.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .engine import (
    _DETECT_LIMIT,
    _EPS,
    DeadlineMiss,
    SimulationResult,
    Simulator,
)
from .trace import IDLE, ExecutionTrace

__all__ = ["VectorEngine", "run_vectorized", "unsupported_reason"]

# DVS kind codes (per-scenario dispatch without isinstance per round).
_DVS_NODVS = 0
_DVS_STATIC = 1
_DVS_CCEDF_NODE = 2
_DVS_CCEDF_GRAPH = 3
_DVS_LAEDF_NODE = 4
_DVS_LAEDF_GRAPH = 5

# Priority kind codes.
_PRIO_RANDOM = 0
_PRIO_LTF = 1
_PRIO_STF = 2
_PRIO_PUBS = 3

# Estimator kind codes (PUBS rows only).
_EST_WORST = 0
_EST_SCALED = 1
_EST_HISTORY = 2
_EST_ORACLE = 3

#: Matches ``bisect_left(freqs, target * (1 - 1e-12))`` in the scalar
#: frequency table.
_ONE_MINUS = 1.0 - 1e-12

#: ``repro.dvs.laedf._EPS`` == ``repro.core.priority._EPS``.
_LA_EPS = 1e-12
#: ``repro.core.estimator._EPS``.
_EST_EPS = 1e-9
#: ``repro.core.feasibility._ATOL``.
_FEAS_ATOL = 1e-9

#: Ceiling on pre-drawn per-job actuals (total draws per scenario) —
#: beyond this the compile-time table would dwarf the simulation state.
_MAX_PREDRAW = 4_000_000

_BIG_RANK = np.iinfo(np.int64).max

#: Demotion reason for the numeric guardrail: a vectorized scenario
#: whose materialized trace contains NaN/inf is re-run scalar rather
#: than silently returned (the scalar engine either produces finite
#: values or raises a diagnosable error).
_NONFINITE_REASON = "non-finite value in vectorized trace"


def _la_lookahead(d, c, util, present, t):
    """Bitwise replica of :meth:`LaEDF._lookahead` over leading axes.

    ``d``/``c``/``util``/``present`` are broadcast-compatible arrays
    with the graph axis last; ``t`` matches the leading shape.  Every
    float op replays the scalar loop's expression order: the reverse-
    EDF traversal is a stable argsort on ``-d`` (absent graphs sort
    last and are masked out of every update), and the ``u``/``s``
    accumulators advance position by position exactly like the Python
    ``for`` loop, so results are bit-identical per scenario.
    """
    d, c, util, present = np.broadcast_arrays(d, c, util, present)
    lead = d.shape[:-1]
    t = np.broadcast_to(t, lead)
    G = d.shape[-1]
    # Masked-out lanes still flow through the arithmetic (inf - inf,
    # x / 0); their results are discarded, so silence the FP warnings.
    with np.errstate(divide="ignore", invalid="ignore"):
        pend = present & (c > _LA_EPS)
        has = pend.any(axis=-1)
        d_n = np.where(pend, d, np.inf).min(axis=-1)
        horizon = d_n - t
        full = horizon <= _LA_EPS
        u = np.zeros(lead)
        for g in range(G):
            u = u + np.where(present[..., g], util[..., g], 0.0)
        order = np.argsort(
            np.where(present, -d, np.inf), axis=-1, kind="stable"
        )
        # One gather up front, then cheap views per position — the
        # per-position take_along_axis calls dominated this kernel.
        pres_s = np.take_along_axis(present, order, -1)
        d_s = np.take_along_axis(d, order, -1)
        c_s = np.take_along_axis(c, order, -1)
        u_s = np.take_along_axis(util, order, -1)
        s = np.zeros(lead)
        for p in range(G):
            act = pres_s[..., p]
            d_i = d_s[..., p]
            c_i = c_s[..., p]
            u_i = u_s[..., p]
            u = np.where(act, u - u_i, u)
            span = d_i - d_n
            small = span <= _LA_EPS
            x = np.where(
                small, c_i, np.maximum(0.0, c_i - (1.0 - u) * span)
            )
            u = np.where(act & ~small, u + (c_i - x) / span, u)
            s = np.where(act, s + x, s)
        return np.where(has, np.where(full, 1.0, s / horizon), 0.0)


def unsupported_reason(
    simulator: Simulator, horizon: float
) -> Optional[str]:
    """Why this scenario cannot be vectorized (``None`` = it can).

    The checks are deliberately exact-type checks: a subclass could
    override any hook, and the vector engine replicates the *stock*
    semantics only.
    """
    return _classify(simulator, horizon)[0]


def _classify(
    simulator: Simulator, horizon: float
) -> Tuple[Optional[str], Optional[List[np.ndarray]]]:
    """(reason, actuals) — one ``(nodes, jobs)`` array per graph when
    vectorizable.

    Validating the actuals means drawing them, and providers can be
    expensive per call (hash-keyed RNG draws); returning the validated
    values lets compilation reuse them instead of drawing twice.  For
    ``job_invariant`` providers the job axis has length 1; for
    ``job_keyed`` providers every job the horizon can release is
    pre-drawn — legal because such draws are a pure function of the
    ``(graph, node, job_index)`` key, never of interleaving order.
    """
    # Imported lazily: core imports sim.state, so a module-level import
    # here would complete a core<->sim cycle.
    from ..core.estimator import (
        HistoryEstimator,
        OracleEstimator,
        ScaledEstimator,
        WorstCaseEstimator,
    )
    from ..core.methodology import SchedulingPolicy
    from ..core.priority import LTF, PUBS, STF, RandomPriority
    from ..core.ready_list import ALL_RELEASED, MOST_IMMINENT
    from ..dvs.ccedf import CcEDF
    from ..dvs.laedf import LaEDF
    from ..dvs.nodvs import NoDVS
    from ..dvs.static import StaticUtilization
    from ..processor.dvfs import FrequencyTable
    from ..processor.platform import Processor
    from ..processor.power import PowerModel
    from ..workloads.generator import UniformActuals
    from .state import _actual_tol

    if type(simulator) is not Simulator:
        return "subclassed Simulator", None
    try:
        h = float(horizon)
    except (TypeError, ValueError):
        return "non-numeric horizon", None
    if not (h > 0):
        return "non-positive horizon", None
    proc = simulator.processor
    if type(proc) is not Processor:
        return "subclassed Processor", None
    if type(proc.table) is not FrequencyTable:
        return "subclassed FrequencyTable", None
    if type(proc.power) is not PowerModel:
        return "custom power model", None
    if proc.speed_policy not in ("mix", "quantize"):
        return f"speed policy {proc.speed_policy!r}", None
    policy = simulator.policy
    if type(policy) is not SchedulingPolicy:
        return "subclassed SchedulingPolicy", None
    if policy.ready_list not in (MOST_IMMINENT, ALL_RELEASED):
        return f"ready list {policy.ready_list.name!r}", None
    prio = policy.priority
    if type(prio) not in (RandomPriority, LTF, STF, PUBS):
        return f"priority function {prio.name!r}", None
    if type(prio) is PUBS:
        est = prio.estimator
        if type(est) not in (
            WorstCaseEstimator,
            ScaledEstimator,
            HistoryEstimator,
            OracleEstimator,
        ):
            return f"pUBS estimator {est.name!r}", None
        if type(est) is HistoryEstimator and est._hist:
            return "pre-seeded history estimator", None
    if type(simulator.dvs) not in (
        NoDVS, StaticUtilization, CcEDF, LaEDF,
    ):
        return f"DVS algorithm {simulator.dvs.name!r}", None
    invariant = bool(getattr(simulator.actuals, "job_invariant", False))
    keyed = bool(getattr(simulator.actuals, "job_keyed", False))
    if not (invariant or keyed):
        return "actuals neither job-invariant nor job-keyed", None
    if any(g.phase != 0.0 for g in simulator.task_set):
        return "non-zero release phases", None
    if len(simulator.task_set) == 0:
        return "empty task set", None
    eps = simulator._time_eps()
    # The stock provider exposes a batched draw path whose values are
    # pinned bit-identical to its per-call path; pre-drawing through it
    # keeps compile time off the profile for large stochastic tables.
    batched = type(simulator.actuals) is UniformActuals
    actuals: List[np.ndarray] = []
    total_draws = 0
    try:
        for g in simulator.task_set:
            if invariant:
                jg = 1
            else:
                # Releases happen strictly before the horizon (with eps
                # slack), so job indices stay below (h + eps) / period.
                jg = int(np.floor((h + eps) / g.period)) + 1
            total_draws += len(g.graph) * jg
            if total_draws > _MAX_PREDRAW:
                return "per-job actuals table too large", None
            rows = np.empty((len(g.graph), jg))
            for m, node in enumerate(g.graph):
                wc = node.wcet
                tol = _actual_tol(wc)
                if batched:
                    vals = simulator.actuals.draw_jobs(
                        g.name, node.name, jg, wc
                    )
                    # Mirrors JobState validation; an invalid actual
                    # must raise from the scalar engine, not from
                    # array code.
                    if not ((vals > 0).all() and (vals <= wc + tol).all()):
                        return "actuals outside (0, wcet]", None
                    rows[m] = vals
                    continue
                for j in range(jg):
                    ac = float(
                        simulator.actuals(g.name, node.name, j, wc)
                    )
                    if not (0 < ac <= wc + tol):
                        return "actuals outside (0, wcet]", None
                    rows[m, j] = ac
            actuals.append(rows)
    except Exception:
        return "actuals provider raised", None
    return None, actuals


class _Columns:
    """Append-only global trace buffer shared by all vector scenarios.

    One row per recorded segment; ``scen`` says which scenario owns the
    row, ``key`` encodes ``graph_index * (M + 1) + node_index`` (or the
    per-scenario idle sentinel).  Rows are appended in per-scenario
    chronological order, so a stable argsort by ``scen`` recovers each
    scenario's trace.
    """

    def __init__(self, cap: int = 1024) -> None:
        self.n = 0
        self.scen = np.empty(cap, dtype=np.intp)
        self.key = np.empty(cap, dtype=np.intp)
        self.start = np.empty(cap)
        self.dur = np.empty(cap)
        self.speed = np.empty(cap)
        self.volt = np.empty(cap)
        self.cur = np.empty(cap)

    def append(
        self,
        scen: np.ndarray,
        key: np.ndarray,
        start: np.ndarray,
        dur: np.ndarray,
        speed: np.ndarray,
        volt: np.ndarray,
        cur: np.ndarray,
    ) -> None:
        # The scalar trace drops zero-length dispatches at record time;
        # dropping here keeps per-scenario row counts aligned with the
        # segments the scalar engine would have kept.
        keep = dur > 0
        if not keep.all():
            scen, key = scen[keep], key[keep]
            start, dur = start[keep], dur[keep]
            speed, volt, cur = speed[keep], volt[keep], cur[keep]
        m = scen.size
        if m == 0:
            return
        need = self.n + m
        if need > self.scen.size:
            cap = self.scen.size
            while cap < need:
                cap *= 2
            for name in (
                "scen", "key", "start", "dur", "speed", "volt", "cur",
            ):
                old = getattr(self, name)
                new = np.empty(cap, dtype=old.dtype)
                new[: self.n] = old[: self.n]
                setattr(self, name, new)
        n = self.n
        self.scen[n:need] = scen
        self.key[n:need] = key
        self.start[n:need] = start
        self.dur[n:need] = dur
        self.speed[n:need] = speed
        self.volt[n:need] = volt
        self.cur[n:need] = cur
        self.n = need


@dataclass
class _Probe:
    """Per-scenario steady-state detection state (fast path)."""

    k: int  # boundary index the scenario is advancing toward
    marks: Tuple[int, int, int, int, int, int, int]
    # marks = (rows, misses, releases, released, completed_jobs,
    #          completed_nodes, global_buffer_rows) at boundary k-1.
    prev_fp: Optional[tuple] = None
    prev_span: Optional[Tuple[int, int]] = None  # global buffer range


class VectorEngine:
    """Run N ``(Simulator, horizon)`` scenarios in lock-step SoA form.

    Parameters
    ----------
    scenarios:
        ``(simulator, horizon)`` pairs.  Each simulator must be fresh
        (never run), exactly like items handed to a scalar batch.

    After :meth:`run`, :attr:`fallback_reasons` holds one entry per
    scenario: ``None`` for scenarios computed by the vector engine, or
    a short human-readable reason for those that fell back to (or were
    demoted to) the scalar engine.  :attr:`numeric_demotions` counts
    the subset of demotions caused by the numeric guardrail (NaN/inf
    detected in a vectorized scenario's trace).
    """

    def __init__(
        self, scenarios: Sequence[Tuple[Simulator, float]]
    ) -> None:
        self.numeric_demotions = 0
        self.scenarios: List[Tuple[Simulator, float]] = [
            (sim, horizon) for sim, horizon in scenarios
        ]
        classified = [
            _classify(sim, horizon) for sim, horizon in self.scenarios
        ]
        self.fallback_reasons: List[Optional[str]] = [
            reason for reason, _ in classified
        ]
        self._actuals: List[Optional[List[np.ndarray]]] = [
            actuals for _, actuals in classified
        ]

    # ------------------------------------------------------------------
    @property
    def n_vectorized(self) -> int:
        return sum(1 for r in self.fallback_reasons if r is None)

    @property
    def n_fallback(self) -> int:
        return len(self.fallback_reasons) - self.n_vectorized

    def run(
        self,
        *,
        fast: bool = True,
        detect_limit: int = _DETECT_LIMIT,
    ) -> List[SimulationResult]:
        """Simulate every scenario; returns results in item order.

        ``fast``/``detect_limit`` mirror :meth:`Simulator.run`: with
        ``fast=True`` each vectorized scenario independently probes for
        a steady-state hyperperiod and tiles the remainder.  Fallback
        scenarios re-run the scalar engine with the same flags, in item
        order, so any exception (e.g. ``DeadlineMissError`` under
        ``on_miss='raise'``) surfaces exactly as a scalar loop over the
        items would raise it.
        """
        n = len(self.scenarios)
        results: List[Optional[SimulationResult]] = [None] * n
        reasons = list(self.fallback_reasons)
        vec_ids = [i for i in range(n) if reasons[i] is None]
        if vec_ids:
            vrun = _VectorRun(
                self.scenarios, vec_ids, self._actuals, fast, detect_limit
            )
            vec_results, demoted = vrun.execute()
            for i, res in vec_results.items():
                results[i] = res
            for i, why in demoted.items():
                reasons[i] = why
                if why == _NONFINITE_REASON:
                    self.numeric_demotions += 1
        self.fallback_reasons = reasons
        for i in range(n):
            if results[i] is None:
                sim, horizon = self.scenarios[i]
                results[i] = sim.run(
                    horizon, fast=fast, detect_limit=detect_limit
                )
        return results  # type: ignore[return-value]


def run_vectorized(
    scenarios: Sequence[Tuple[Simulator, float]],
    *,
    fast: bool = True,
    detect_limit: int = _DETECT_LIMIT,
) -> List[SimulationResult]:
    """Convenience wrapper: ``VectorEngine(scenarios).run(...)``.

    An empty scenario sequence returns an empty list (unlike
    :class:`~repro.sim.batch.ScenarioBatch`, which needs at least one
    item because it also orchestrates a battery pass).
    """
    if not scenarios:
        return []
    return VectorEngine(scenarios).run(
        fast=fast, detect_limit=detect_limit
    )


class _VectorRun:
    """One lock-step execution over the vectorizable scenario subset."""

    def __init__(
        self,
        scenarios: Sequence[Tuple[Simulator, float]],
        vec_ids: List[int],
        actuals: Sequence[Optional[List[np.ndarray]]],
        fast: bool,
        detect_limit: int,
    ) -> None:
        self.items = scenarios
        self.vec_ids = vec_ids
        self.actuals_cache = actuals
        self.fast = fast
        self.detect_limit = detect_limit
        self.demoted: Dict[int, str] = {}  # item index -> reason
        self._compile()

    # -- compilation ---------------------------------------------------
    def _compile(self) -> None:
        from ..core.estimator import (
            HistoryEstimator,
            ScaledEstimator,
            WorstCaseEstimator,
        )
        from ..core.priority import LTF, PUBS, RandomPriority, STF
        from ..core.ready_list import ALL_RELEASED
        from ..dvs.ccedf import CcEDF
        from ..dvs.laedf import LaEDF
        from ..dvs.nodvs import NoDVS
        from ..dvs.static import StaticUtilization

        V = len(self.vec_ids)
        sims = [self.items[i][0] for i in self.vec_ids]
        G = max(len(s.task_set) for s in sims)
        M = max(
            len(g.graph) for s in sims for g in s.task_set
        )
        L = max(len(s.processor.table) for s in sims)
        self.V, self.G, self.M, self.L = V, G, M, L

        self.present = np.zeros((V, G), dtype=bool)
        self.period = np.ones((V, G))
        self.total_wcet = np.zeros((V, G))
        self.util = np.zeros((V, G))
        self.name_rank = np.full((V, G), _BIG_RANK, dtype=np.int64)
        self.n_nodes = np.zeros((V, G), dtype=np.int64)
        self.per_cycle = np.zeros((V, G), dtype=np.int64)
        self.wcet = np.zeros((V, G, M))
        self.actual = np.ones((V, G, M))
        self.exists = np.zeros((V, G, M), dtype=bool)
        self.node_rank = np.full((V, G, M), _BIG_RANK, dtype=np.int64)
        self.pred = np.zeros((V, G, M, M), dtype=bool)
        self.freqs = np.full((V, L), np.inf)
        self.volts = np.zeros((V, L))
        self.currents = np.zeros((V, L))
        self.n_levels = np.ones(V, dtype=np.int64)
        self.f_max = np.ones(V)
        self.fmin_ratio = np.zeros(V)
        self.quantize = np.zeros(V, dtype=bool)
        self.idle_cur = np.zeros(V)
        self.dvs_kind = np.zeros(V, dtype=np.int64)
        self.static_u = np.zeros(V)
        self.prio_kind = np.zeros(V, dtype=np.int64)
        self.rl_all = np.zeros(V, dtype=bool)
        self.feas_on = np.zeros(V, dtype=bool)
        self.est_kind = np.zeros(V, dtype=np.int64)
        self.est_factor = np.zeros(V)
        self.est_window = np.ones(V, dtype=np.int64)
        self.stoch = np.zeros(V, dtype=bool)
        self._jobact: List[Dict[int, np.ndarray]] = [
            {} for _ in range(V)
        ]
        self.on_raise = np.zeros(V, dtype=bool)
        self.eps = np.zeros(V)
        self.horizon = np.zeros(V)
        self.ff_ok = np.zeros(V, dtype=bool)
        self.hyper = np.zeros(V)
        self._hyper_py: List[float] = [0.0] * V
        self._horizon_py: List[float] = [0.0] * V
        self._eps_py: List[float] = [0.0] * V
        self._rngs: List[Optional[np.random.Generator]] = [None] * V
        self._graph_names: List[List[str]] = []
        self._node_names: List[List[List[str]]] = []
        self._per_cycle_by_name: List[Dict[str, int]] = []

        for v, i in enumerate(self.vec_ids):
            sim, horizon = self.items[i]
            drawn = self.actuals_cache[i]
            assert drawn is not None
            ts, proc = sim.task_set, sim.processor
            names = [g.name for g in ts]
            order = {n: r for r, n in enumerate(sorted(names))}
            self._graph_names.append(names)
            node_lists: List[List[str]] = []
            per_cycle_names: Dict[str, int] = {}
            for g_idx, g in enumerate(ts):
                self.present[v, g_idx] = True
                self.period[v, g_idx] = g.period
                self.total_wcet[v, g_idx] = g.graph.total_wcet
                # The scalar laEDF reads the precomputed utilization
                # property per round; the value is a plain float.
                self.util[v, g_idx] = float(g.utilization)
                self.name_rank[v, g_idx] = order[g.name]
                nnames = list(g.graph.node_names)
                node_lists.append(nnames)
                self.n_nodes[v, g_idx] = len(nnames)
                nrank = {n: r for r, n in enumerate(sorted(nnames))}
                pos = {n: m for m, n in enumerate(nnames)}
                for m, nn in enumerate(nnames):
                    wc = g.graph.wcet(nn)
                    self.wcet[v, g_idx, m] = wc
                    # JobState stores min(actual, wcet) after its
                    # validation pass (the draw came from _classify).
                    self.actual[v, g_idx, m] = min(
                        float(drawn[g_idx][m, 0]), wc
                    )
                    self.exists[v, g_idx, m] = True
                    self.node_rank[v, g_idx, m] = nrank[nn]
                    for p in g.graph.predecessors(nn):
                        self.pred[v, g_idx, m, pos[p]] = True
                if drawn[g_idx].shape[1] > 1:
                    # Job-dependent actuals: the per-job table, min'd
                    # against each node's WCET exactly as JobState
                    # stores draws at release time.
                    wc_col = self.wcet[v, g_idx, : len(nnames)]
                    self._jobact[v][g_idx] = np.minimum(
                        drawn[g_idx], wc_col[:, None]
                    )
                    self.stoch[v] = True
            self._node_names.append(node_lists)
            table = proc.table
            nl = len(table)
            self.n_levels[v] = nl
            for li, point in enumerate(table.points):
                self.freqs[v, li] = point.frequency
                self.volts[v, li] = point.voltage
                self.currents[v, li] = proc.power.battery_current(point)
            self.f_max[v] = table.f_max
            self.fmin_ratio[v] = table.f_min / table.f_max
            self.quantize[v] = proc.speed_policy == "quantize"
            self.idle_cur[v] = proc.idle_current()
            dvs = sim.dvs
            if type(dvs) is NoDVS:
                self.dvs_kind[v] = _DVS_NODVS
            elif type(dvs) is StaticUtilization:
                self.dvs_kind[v] = _DVS_STATIC
                self.static_u[v] = float(ts.utilization)
            elif type(dvs) is CcEDF:
                self.dvs_kind[v] = (
                    _DVS_CCEDF_NODE
                    if dvs.granularity == "node"
                    else _DVS_CCEDF_GRAPH
                )
            else:
                assert type(dvs) is LaEDF
                self.dvs_kind[v] = (
                    _DVS_LAEDF_NODE
                    if dvs.granularity == "node"
                    else _DVS_LAEDF_GRAPH
                )
            prio = sim.policy.priority
            if type(prio) is RandomPriority:
                self.prio_kind[v] = _PRIO_RANDOM
                gen = prio._rng
                bit = type(gen.bit_generator)()
                bit.state = copy.deepcopy(gen.bit_generator.state)
                self._rngs[v] = np.random.Generator(bit)
            elif type(prio) is LTF:
                self.prio_kind[v] = _PRIO_LTF
            elif type(prio) is STF:
                self.prio_kind[v] = _PRIO_STF
            else:
                assert type(prio) is PUBS
                self.prio_kind[v] = _PRIO_PUBS
                est = prio.estimator
                if type(est) is WorstCaseEstimator:
                    self.est_kind[v] = _EST_WORST
                elif type(est) is ScaledEstimator:
                    self.est_kind[v] = _EST_SCALED
                    self.est_factor[v] = est.factor
                elif type(est) is HistoryEstimator:
                    self.est_kind[v] = _EST_HISTORY
                    self.est_factor[v] = est.default_factor
                    self.est_window[v] = est.window
                else:
                    self.est_kind[v] = _EST_ORACLE
            self.rl_all[v] = sim.policy.ready_list is ALL_RELEASED
            self.feas_on[v] = bool(sim.policy.enforce_feasibility)
            self.on_raise[v] = sim.on_miss == "raise"
            eps = sim._time_eps()
            self.eps[v] = eps
            self._eps_py[v] = eps
            h = float(horizon)
            self.horizon[v] = h
            self._horizon_py[v] = h
            if self.fast and self.detect_limit >= 2:
                eligible = sim._fast_eligible(h)
                if eligible is not None:
                    hyper, per_cycle = eligible
                    self.ff_ok[v] = True
                    self.hyper[v] = hyper
                    self._hyper_py[v] = hyper
                    per_cycle_names = per_cycle
                    for g_idx, g in enumerate(ts):
                        self.per_cycle[v, g_idx] = per_cycle[g.name]
            self._per_cycle_by_name.append(per_cycle_names)

        # Derived per-scenario masks ---------------------------------
        self.is_cc = (self.dvs_kind == _DVS_CCEDF_NODE) | (
            self.dvs_kind == _DVS_CCEDF_GRAPH
        )
        self.is_la = (self.dvs_kind == _DVS_LAEDF_NODE) | (
            self.dvs_kind == _DVS_LAEDF_GRAPH
        )
        # "Wide" rows need the generalized candidate machinery (EDF job
        # ordering, feasibility prefix-scan, pUBS scoring); everything
        # else keeps the cheap most-imminent path.
        self.wide = self.rl_all | (self.prio_kind == _PRIO_PUBS)
        self._any_wide = bool(self.wide.any())
        self._any_la = bool(self.is_la.any())
        self._any_stoch = bool(self.stoch.any())
        self.hist_rows = (self.prio_kind == _PRIO_PUBS) & (
            self.est_kind == _EST_HISTORY
        )
        self._any_hist = bool(self.hist_rows.any())
        w_max = (
            int(self.est_window[self.hist_rows].max())
            if self._any_hist
            else 1
        )
        # Per-(scenario, node) completion history for PUBS + history
        # estimator rows: entries [0:len) oldest-first, exactly the
        # deque's summation order.
        self.hist = np.zeros((V, G, M, w_max))
        self.hist_len = np.zeros((V, G, M), dtype=np.int64)

        # Mutable lock-step state ------------------------------------
        self.t = np.zeros(V)
        self.until = self.horizon.copy()
        self.active = np.ones(V, dtype=bool)
        # next_release starts at release_time(0) = phase + 0*period = 0
        # (phases are zero by eligibility).
        self.next_release = np.where(self.present, 0.0, np.inf)
        self.job_counter = np.zeros((V, G), dtype=np.int64)
        self.in_jobs = np.zeros((V, G), dtype=bool)
        self.job_index = np.zeros((V, G), dtype=np.int64)
        self.job_release = np.zeros((V, G))
        self.job_deadline = np.zeros((V, G))
        self.executed = np.zeros((V, G, M))
        self.done = np.zeros((V, G, M), dtype=bool)
        # CcEDF.on_sim_start budgets everyone at worst case.
        self.budget = self.total_wcet.copy()
        self.acc = np.zeros((V, G))
        self.released = np.zeros(V, dtype=np.int64)
        self.completed_jobs = np.zeros(V, dtype=np.int64)
        self.completed_nodes = np.zeros(V, dtype=np.int64)
        self.tiled = np.zeros(V, dtype=np.int64)
        self.n_rows = np.zeros(V, dtype=np.int64)
        self.n_miss = np.zeros(V, dtype=np.int64)
        self.n_rel = np.zeros(V, dtype=np.int64)

        self.cols = _Columns()
        self._miss_log: List[tuple] = []  # (scen, g, jidx, time, det)
        self._rel_log: List[tuple] = []  # (scen, time)
        self._probe: Dict[int, _Probe] = {}
        self._tiles: Dict[int, tuple] = {}
        # Which scenarios currently probe for a steady state; lets the
        # per-round boundary pass skip the Python loop entirely until a
        # probing scenario actually reaches its boundary.
        self.probing = np.zeros(V, dtype=bool)
        for v in range(V):
            if self.ff_ok[v]:
                self._start_probe(v, 1)

    # -- fast-forward probes -------------------------------------------
    def _marks(self, v: int) -> Tuple[int, int, int, int, int, int, int]:
        return (
            int(self.n_rows[v]),
            int(self.n_miss[v]),
            int(self.n_rel[v]),
            int(self.released[v]),
            int(self.completed_jobs[v]),
            int(self.completed_nodes[v]),
            self.cols.n,
        )

    def _start_probe(self, v: int, k: int) -> None:
        """Aim scenario ``v`` at boundary ``k`` (or give up on tiling)."""
        hyper = self._hyper_py[v]
        boundary = k * hyper
        if (
            k > self.detect_limit
            or boundary > self._horizon_py[v] - hyper + self._eps_py[v]
        ):
            self._probe.pop(v, None)
            self.probing[v] = False
            self.until[v] = self.horizon[v]
            return
        probe = self._probe.get(v)
        if probe is None:
            probe = _Probe(k=k, marks=self._marks(v))
            self._probe[v] = probe
        else:
            probe.k = k
            probe.marks = self._marks(v)
        self.probing[v] = True
        self.until[v] = boundary

    def _fingerprint(self, v: int, boundary: float) -> tuple:
        """Scheduler-stack state at ``boundary``, shifted to it.

        Equality between consecutive boundaries here coincides with the
        scalar engine's ``_fingerprint`` equality: both cover release
        clocks, in-flight job progress, DVS budgets and the priority
        RNG state (actuals are job-invariant, hence constant).
        """
        pres = self.present[v]
        inj = self.in_jobs[v] & pres
        exec_fp = np.where(inj[:, None], self.executed[v], 0.0)
        done_fp = self.done[v] & inj[:, None]
        parts = [
            (self.next_release[v] - boundary)[pres].tobytes(),
            inj[pres].tobytes(),
            np.where(inj, self.job_index[v] - self.job_counter[v], 0)[
                pres
            ].tobytes(),
            np.where(inj, self.job_release[v] - boundary, 0.0)[
                pres
            ].tobytes(),
            np.where(inj, self.job_deadline[v] - boundary, 0.0)[
                pres
            ].tobytes(),
            exec_fp[pres].tobytes(),
            done_fp[pres].tobytes(),
        ]
        kind = int(self.dvs_kind[v])
        if kind in (_DVS_CCEDF_NODE, _DVS_CCEDF_GRAPH):
            parts.append(self.budget[v][pres].tobytes())
            parts.append(self.acc[v][pres].tobytes())
        if int(self.prio_kind[v]) == _PRIO_RANDOM:
            parts.append(repr(self._rngs[v].bit_generator.state))
        if self.hist_rows[v]:
            # Estimator history joins the fingerprint for PUBS+history
            # rows, mirroring _freeze(self.policy) in the scalar
            # engine: equal (len, entries) per node coincides with
            # equal frozen deques.
            ex = self.exists[v]
            ln = self.hist_len[v]
            w = self.hist.shape[3]
            mask = np.arange(w)[None, None, :] < ln[:, :, None]
            parts.append(ln[ex].tobytes())
            parts.append(
                np.where(mask, self.hist[v], 0.0)[ex].tobytes()
            )
        return tuple(parts)

    def _cycle_rows(self, v: int, span: Tuple[int, int]) -> tuple:
        g0, g1 = span
        sel = np.flatnonzero(self.cols.scen[g0:g1] == v) + g0
        return (
            self.cols.key[sel],
            self.cols.start[sel],
            self.cols.dur[sel],
            self.cols.speed[sel],
            self.cols.volt[sel],
            self.cols.cur[sel],
        )

    def _cycles_match(
        self, v: int, prev: Tuple[int, int], cur: Tuple[int, int]
    ) -> bool:
        """The scalar engine's ``_cycles_match`` over buffer spans."""
        ka, sa, da, pa, va, ia = self._cycle_rows(v, prev)
        kb, sb, db, pb, vb, ib = self._cycle_rows(v, cur)
        if ka.size != kb.size or ka.size == 0:
            return False
        if not np.array_equal(ka, kb):
            return False
        for a, b in ((pa, pb), (va, vb), (ia, ib)):
            if not np.array_equal(a, b):
                return False
        eps = self._eps_py[v]
        if not np.allclose(da, db, rtol=1e-9, atol=eps):
            return False
        return bool(
            np.allclose(sa - sa[0], sb - sb[0], rtol=1e-9, atol=eps)
        )

    def _apply_tile(self, v: int, boundary: float, probe: _Probe) -> bool:
        horizon = self._horizon_py[v]
        hyper = self._hyper_py[v]
        copies = int((horizon - boundary) / hyper)
        while boundary + (copies + 1) * hyper <= horizon:
            copies += 1
        while copies > 0 and boundary + copies * hyper > horizon:
            copies -= 1
        if copies < 1:
            return False
        rows0, miss0, rel0, released0, cjobs0, cnodes0, _ = probe.marks
        self._tiles[v] = (
            int(self.n_rows[v]),  # tail starts after this many rows
            rows0,  # first row of the tiled cycle
            copies,
            hyper,
            miss0,
            int(self.n_miss[v]),
            rel0,
            int(self.n_rel[v]),
        )
        self.released[v] += copies * (int(self.released[v]) - released0)
        self.completed_jobs[v] += copies * (
            int(self.completed_jobs[v]) - cjobs0
        )
        self.completed_nodes[v] += copies * (
            int(self.completed_nodes[v]) - cnodes0
        )
        self.tiled[v] = copies
        pres = self.present[v]
        inj = self.in_jobs[v] & pres
        self.job_index[v][inj] += copies * self.per_cycle[v][inj]
        # release_time(j) = phase + j*period with phase == 0.
        self.job_release[v][inj] = (
            self.job_index[v] * self.period[v]
        )[inj]
        self.job_deadline[v][inj] = (
            self.job_release[v] + self.period[v]
        )[inj]
        self.job_counter[v][pres] += copies * self.per_cycle[v][pres]
        self.next_release[v][pres] = (
            self.job_counter[v] * self.period[v]
        )[pres]
        self.t[v] = boundary + copies * hyper
        self.until[v] = self.horizon[v]
        return True

    def _boundary_pass(self) -> None:
        """Handle every probing scenario that reached its boundary."""
        if not self.probing.any():
            return
        hit = self.probing & (self.t >= self.until - self.eps)
        for v in np.flatnonzero(hit):
            v = int(v)
            if not self.active[v]:
                del self._probe[v]
                self.probing[v] = False
                continue
            probe = self._probe[v]
            t = float(self.t[v])
            boundary = probe.k * self._hyper_py[v]
            if abs(t - boundary) > self._eps_py[v]:
                # Stopped short of the boundary: cycle cuts are not
                # aligned, restart detection (scalar does the same).
                probe.prev_fp = None
                probe.prev_span = None
            else:
                span = (probe.marks[6], self.cols.n)
                fp = self._fingerprint(v, boundary)
                if (
                    probe.prev_fp is not None
                    and probe.prev_span is not None
                    and fp == probe.prev_fp
                    and self._cycles_match(v, probe.prev_span, span)
                ):
                    self._probe.pop(v, None)
                    self.probing[v] = False
                    if not self._apply_tile(v, boundary, probe):
                        self.until[v] = self.horizon[v]
                    continue
                probe.prev_fp = fp
                probe.prev_span = span
            self._start_probe(v, probe.k + 1)

    # -- logging -------------------------------------------------------
    def _demote(self, vs: np.ndarray, why: str) -> None:
        for v in np.atleast_1d(vs):
            v = int(v)
            self.active[v] = False
            self._probe.pop(v, None)
            self.probing[v] = False
            self.demoted[self.vec_ids[v]] = why

    # -- the lock-step loop --------------------------------------------
    def execute(self) -> Tuple[Dict[int, SimulationResult], Dict[int, str]]:
        with np.errstate(divide="ignore", invalid="ignore"):
            while True:
                self._boundary_pass()
                live = self.active & (self.t < self.until - self.eps)
                idx = np.flatnonzero(live)
                if idx.size == 0:
                    break
                self._round(idx)
        results = self._materialize()
        return results, self.demoted

    def _round(self, idx: np.ndarray) -> None:
        """Advance every scenario in ``idx`` by exactly one event."""
        n = idx.size
        t = self.t[idx]
        eps = self.eps[idx]
        alive: Optional[np.ndarray] = None  # all-True until a demotion

        # --- 1. due releases (graph by graph, like the scalar loop) ---
        t_plus = t + eps
        # Absent graphs keep next_release == inf, so one (n, G) compare
        # finds every graph with any due release this round.
        due_now = self.next_release[idx] <= t_plus[:, None]
        due_graphs = np.flatnonzero(due_now.any(axis=0))
        for g in due_graphs:
            pres = self.present[idx, g]
            while True:
                due = pres & (self.next_release[idx, g] <= t_plus)
                if alive is not None:
                    due &= alive
                if not due.any():
                    break
                have = due & self.in_jobs[idx, g]
                if have.any():
                    raising = have & self.on_raise[idx]
                    if raising.any():
                        self._demote(
                            idx[raising],
                            "deadline miss with on_miss='raise'",
                        )
                        if alive is None:
                            alive = ~raising
                        else:
                            alive &= ~raising
                        have &= ~raising
                        due &= ~raising
                    if have.any():
                        gi = idx[have]
                        self._miss_log.append(
                            (
                                gi.copy(),
                                np.full(gi.size, g, dtype=np.int64),
                                self.job_index[gi, g].copy(),
                                self.job_deadline[gi, g].copy(),
                                t[have].copy(),
                            )
                        )
                        self.n_miss[gi] += 1
                        self.in_jobs[gi, g] = False  # abandon late job
                if not due.any():
                    continue
                gi = idx[due]
                j = self.job_counter[gi, g]
                self.job_counter[gi, g] = j + 1
                relv = self.next_release[gi, g]
                self.job_index[gi, g] = j
                self.job_release[gi, g] = relv
                self.job_deadline[gi, g] = relv + self.period[gi, g]
                self.executed[gi, g, :] = 0.0
                self.done[gi, g, :] = False
                self.in_jobs[gi, g] = True
                self._rel_log.append((gi.copy(), relv.copy()))
                self.n_rel[gi] += 1
                self.released[gi] += 1
                self.next_release[gi, g] = (j + 1) * self.period[gi, g]
                if self._any_stoch:
                    # Job-dependent actuals: gather this job's column
                    # from the pre-drawn table (JobState would draw
                    # the identical values at this release).
                    sd = self.stoch[gi]
                    if sd.any():
                        for vv, jv in zip(
                            gi[sd].tolist(), j[sd].tolist()
                        ):
                            cols = self._jobact[vv].get(g)
                            if cols is not None:
                                self.actual[vv, g, : cols.shape[0]] = (
                                    cols[:, jv]
                                )
                # dvs.on_release: CcEDF restores the full worst case.
                cc = due & self.is_cc[idx]
                if cc.any():
                    gcc = idx[cc]
                    self.budget[gcc, g] = self.total_wcet[gcc, g]
                    self.acc[gcc, g] = 0.0
        if alive is not None:
            idx = idx[alive]
            if idx.size == 0:
                return
            n = idx.size
            t = self.t[idx]
            eps = self.eps[idx]
            t_plus = t + eps

        pres = self.present[idx]  # (n, G)
        until = self.until[idx]
        # next_release is inf for absent graphs, so no masking needed.
        t_next = np.minimum(self.next_release[idx].min(axis=1), until)

        # --- 2. pending work, speed selection, the two-level mix ------
        in_jobs = self.in_jobs[idx]
        # done is only ever set on existing nodes, so the raw count is
        # the completed-node count.
        done_cnt = self.done[idx].sum(axis=2)
        complete = done_cnt == self.n_nodes[idx]
        schedulable = in_jobs & ~complete
        pending = schedulable.any(axis=1)

        kind = self.dvs_kind[idx]
        period = self.period[idx]
        s_raw = np.zeros(n)
        s_raw[(kind == _DVS_NODVS) & pending] = 1.0
        st_mask = (kind == _DVS_STATIC) & pending
        if st_mask.any():
            s_raw[st_mask] = self.static_u[idx][st_mask]
        u_cc = np.zeros(n)
        cc_mask = self.is_cc[idx] & pending
        if cc_mask.any():
            # Sequential left-to-right accumulation in task-set order —
            # the same float sum the scalar ccEDF computes.  u_cc stays
            # in scope: the pUBS hypothetical for ccEDF rows reuses it.
            budget = self.budget[idx]
            for g in range(self.G):
                u_cc = u_cc + np.where(
                    pres[:, g], budget[:, g] / period[:, g], 0.0
                )
            s_raw[cc_mask] = u_cc[cc_mask]

        # Per-graph deadline/remaining-work geometry, shared between the
        # laEDF lookahead and wide (ALL_RELEASED / pUBS) selection.
        d_eff = node_cl = cl = None
        if self._any_la or self._any_wide:
            # GraphStatus.effective_deadline: the job's deadline, or the
            # *next* job's when idle (implicit deadline == period).
            d_eff = np.where(
                in_jobs, self.job_deadline[idx],
                self.next_release[idx] + period,
            )
            wc3 = self.wcet[idx]
            ex3 = self.executed[idx]
            live3 = self.exists[idx] & ~self.done[idx]
            # JobState.remaining_wc(): node-granular, sequential sum in
            # node order (+0.0 padding on absent/complete lanes is a
            # bitwise no-op for the non-negative accumulator).
            node_cl = np.zeros((n, self.G))
            for m in range(self.M):
                node_cl = node_cl + np.where(
                    live3[:, :, m],
                    np.maximum(0.0, wc3[:, :, m] - ex3[:, :, m]),
                    0.0,
                )
            node_cl = np.where(in_jobs, node_cl, 0.0)
        if self._any_la:
            # JobState.remaining_wc_coarse(): WCET sum minus the
            # sequential executed sum, zero once the job completed.
            exec_sum = np.zeros((n, self.G))
            for m in range(self.M):
                exec_sum = exec_sum + ex3[:, :, m]
            graph_cl = np.where(
                complete,
                0.0,
                np.maximum(0.0, self.total_wcet[idx] - exec_sum),
            )
            graph_cl = np.where(in_jobs, graph_cl, 0.0)
            la_node = (kind == _DVS_LAEDF_NODE)[:, None]
            cl = np.where(la_node, node_cl, graph_cl)
            la_mask = self.is_la[idx] & pending
            if la_mask.any():
                s_la = _la_lookahead(d_eff, cl, self.util[idx], pres, t)
                s_raw[la_mask] = s_la[la_mask]

        dispatch = pending & (s_raw > 0)
        fmax = self.f_max[idx]
        s = np.minimum(1.0, np.maximum(s_raw, self.fmin_ratio[idx]))
        target = s * fmax
        lt = (self.freqs[idx] < (target * _ONE_MINUS)[:, None]).sum(axis=1)
        pos = np.minimum(lt, self.n_levels[idx] - 1)
        hi_f = self.freqs[idx, pos]
        single = (
            (pos == 0)
            | (np.abs(hi_f - target) <= 1e-9 * fmax)
            | self.quantize[idx]
        )
        lo_pos = np.maximum(pos - 1, 0)
        lo_f = self.freqs[idx, lo_pos]
        x = (target - lo_f) / (hi_f - lo_f)
        x = np.minimum(1.0, np.maximum(0.0, x))
        x = np.where(single, 1.0, x)
        frac1 = np.where(single, 0.0, 1.0 - x)
        speed0 = hi_f / fmax
        speed1 = lo_f / fmax
        s_eff = np.where(single, speed0, speed0 * x + speed1 * frac1)
        volt0 = self.volts[idx, pos]
        cur0 = self.currents[idx, pos]
        volt1 = self.volts[idx, lo_pos]
        cur1 = self.currents[idx, lo_pos]

        # --- 3. candidate selection (most-imminent job, then node) ----
        dl = np.where(schedulable, self.job_deadline[idx], np.inf)
        dmin = dl.min(axis=1)
        grank = np.where(
            dl == dmin[:, None], self.name_rank[idx], _BIG_RANK
        )
        gsel = grank.argmin(axis=1)

        ex = self.exists[idx, gsel]  # (n, M)
        dn = self.done[idx, gsel]
        blocked = (self.pred[idx, gsel] & ~dn[:, None, :]).any(axis=2)
        ready = ex & ~dn & ~blocked
        has_ready = ready.any(axis=1)
        weird = dispatch & ~has_ready
        if weird.any():  # cannot occur for a well-formed DAG job
            self._demote(idx[weird], "no ready candidate with pending work")
            dispatch &= ~weird
        dispatch &= has_ready

        wrem = np.maximum(
            0.0, self.wcet[idx, gsel] - self.executed[idx, gsel]
        )
        prio = self.prio_kind[idx]
        prim = np.where(
            ready,
            np.where((prio == _PRIO_LTF)[:, None], -wrem, wrem),
            np.inf,
        )
        pmin = prim.min(axis=1)
        nrank = np.where(
            prim == pmin[:, None], self.node_rank[idx, gsel], _BIG_RANK
        )
        msel = nrank.argmin(axis=1)
        wide = (
            dispatch & self.wide[idx] if self._any_wide
            else np.zeros(n, dtype=bool)
        )
        rand_rows = np.flatnonzero(
            dispatch & (prio == _PRIO_RANDOM) & ~wide
        )
        if rand_rows.size:
            # One nonzero pass for all random rows: row-major order
            # yields each row's candidates as a contiguous ascending
            # run, exactly the order candidates_of() builds.
            rr, cand_cols = np.nonzero(ready[rand_rows])
            counts = np.bincount(rr, minlength=rand_rows.size)
            offs = np.zeros(rand_rows.size + 1, dtype=np.int64)
            np.cumsum(counts, out=offs[1:])
            rngs = self._rngs
            rows_py = idx[rand_rows].tolist()
            counts_py = counts.tolist()
            offs_py = offs.tolist()
            cand_py = cand_cols.tolist()
            sel_py = []
            for i, gv in enumerate(rows_py):
                # Identical draw consumption to shuffling the Candidate
                # list: numpy's sequence shuffle depends only on len().
                perm = list(range(counts_py[i]))
                rngs[gv].shuffle(perm)
                sel_py.append(cand_py[offs_py[i] + perm[0]])
            msel[rand_rows] = sel_py
        if wide.any():
            dispatch = self._select_wide(
                idx, t, dispatch, wide, gsel, msel, schedulable,
                s_raw, s_eff, d_eff, node_cl, cl, u_cc,
            )

        # --- 4. dispatch ----------------------------------------------
        window = t_next - t
        rem = np.maximum(
            0.0,
            self.actual[idx, gsel, msel] - self.executed[idx, gsel, msel],
        )
        t_complete = rem / s_eff
        finished = dispatch & (t_complete <= window + _EPS)
        span = np.minimum(t_complete, window)
        dur0 = span * x  # x == 1.0 on single-level rows (span*1.0==span)
        dur1 = span * frac1
        p0 = dispatch & (x > 0)
        p1 = dispatch & ~single & (frac1 > 0)
        last0 = p0 & ~p1
        c0 = np.where(finished & last0, rem, speed0 * dur0)
        exec_acc = np.where(p0, c0, 0.0)
        c1 = np.where(finished & p1, rem - exec_acc, speed1 * dur1)

        idle = ~dispatch
        idle_rows = np.flatnonzero(idle)
        if idle_rows.size:
            gi = idx[idle_rows]
            idle_key = (
                np.full(gi.size, self.G * (self.M + 1), dtype=np.intp)
            )
            zeros = np.zeros(gi.size)
            self.cols.append(
                gi, idle_key, t[idle_rows], window[idle_rows],
                zeros, zeros, self.idle_cur[gi],
            )
            self.n_rows[gi] += 1

        key = gsel * (self.M + 1) + msel
        if p0.any():
            gi = idx[p0]
            self.cols.append(
                gi, key[p0], t[p0], dur0[p0],
                speed0[p0], volt0[p0], cur0[p0],
            )
            self.n_rows[gi] += 1
        if p1.any():
            gi = idx[p1]
            start1 = t + dur0
            self.cols.append(
                gi, key[p1], start1[p1], dur1[p1],
                speed1[p1], volt1[p1], cur1[p1],
            )
            self.n_rows[gi] += 1

        # advance the selected node, chunk by chunk (clamp per chunk,
        # exactly like JobState.advance_node)
        if p0.any():
            gi = idx[p0]
            gs, ms = gsel[p0], msel[p0]
            e = self.executed[gi, gs, ms] + c0[p0]
            a = self.actual[gi, gs, ms]
            clamped = e >= a - 1e-9
            self.executed[gi, gs, ms] = np.where(clamped, a, e)
            self.done[gi, gs, ms] |= clamped
            # A second chunk landing on a node the first chunk already
            # clamped complete raises in the scalar engine.
            clamped_full = np.zeros(n, dtype=bool)
            clamped_full[p0] = clamped
            bad = p1 & clamped_full
            if bad.any():
                self._demote(
                    idx[bad], "mid-dispatch node completion (scalar raises)"
                )
                p1 &= ~bad
                finished &= ~bad
                dispatch &= ~bad
        if p1.any():
            gi = idx[p1]
            gs, ms = gsel[p1], msel[p1]
            e = self.executed[gi, gs, ms] + c1[p1]
            a = self.actual[gi, gs, ms]
            clamped = e >= a - 1e-9
            self.executed[gi, gs, ms] = np.where(clamped, a, e)
            self.done[gi, gs, ms] |= clamped

        # --- 5. completion bookkeeping --------------------------------
        if finished.any():
            fi = idx[finished]
            self.completed_nodes[fi] += 1
            ac = self.actual[idx, gsel, msel]
            wc = self.wcet[idx, gsel, msel]
            ccn = finished & (kind == _DVS_CCEDF_NODE)
            if ccn.any():
                gi = idx[ccn]
                gs = gsel[ccn]
                self.budget[gi, gs] = self.budget[gi, gs] + (
                    ac[ccn] - wc[ccn]
                )
            # is the whole job complete now?
            jc = finished & (
                self.done[idx, gsel].sum(axis=1)
                == self.n_nodes[idx, gsel]
            )
            ccg = finished & (kind == _DVS_CCEDF_GRAPH)
            if ccg.any():
                gi = idx[ccg]
                gs = gsel[ccg]
                self.acc[gi, gs] = self.acc[gi, gs] + ac[ccg]
                both = ccg & jc
                if both.any():
                    gi = idx[both]
                    gs = gsel[both]
                    self.budget[gi, gs] = self.acc[gi, gs]
            if jc.any():
                gi = idx[jc]
                self.completed_jobs[gi] += 1
                self.in_jobs[gi, gsel[jc]] = False
            # policy.observe_completion -> HistoryEstimator.observe:
            # append the node's *full* actual to its per-node window.
            if self._any_hist:
                hs = finished & self.hist_rows[idx]
                if hs.any():
                    gi = idx[hs]
                    gs = gsel[hs]
                    ms = msel[hs]
                    acv = ac[hs]
                    wv = self.est_window[gi]
                    ln = self.hist_len[gi, gs, ms]
                    notfull = ln < wv
                    if notfull.any():
                        a_, b_, c_ = gi[notfull], gs[notfull], ms[notfull]
                        self.hist[a_, b_, c_, ln[notfull]] = acv[notfull]
                        self.hist_len[a_, b_, c_] = ln[notfull] + 1
                    fullw = ~notfull
                    if fullw.any():
                        a_, b_, c_ = gi[fullw], gs[fullw], ms[fullw]
                        sub = self.hist[a_, b_, c_]
                        # deque(maxlen=w): drop the oldest, append at
                        # w-1.  Lanes >= w hold garbage but every read
                        # is masked by hist_len.
                        sub[:, :-1] = sub[:, 1:]
                        sub[np.arange(a_.size), wv[fullw] - 1] = acv[fullw]
                        self.hist[a_, b_, c_] = sub

        # --- 6. clock update ------------------------------------------
        # Finished rows advance chunk by chunk (t (+dur0) (+dur1), the
        # scalar per-chunk clock); everything else jumps to t_next.
        # dur0 is +0.0 on chunkless rows, so the trailing adds are
        # bitwise no-ops there; demoted rows get t_next but are dead.
        t0c = t + dur0
        self.t[idx] = np.where(
            finished, np.where(p1, t0c + dur1, t0c), t_next
        )

    # -- wide candidate selection (ALL_RELEASED and/or pUBS) -----------
    def _select_wide(
        self,
        idx: np.ndarray,
        t: np.ndarray,
        dispatch: np.ndarray,
        wide: np.ndarray,
        gsel: np.ndarray,
        msel: np.ndarray,
        schedulable: np.ndarray,
        s_raw: np.ndarray,
        s_eff: np.ndarray,
        d_eff: np.ndarray,
        node_cl: np.ndarray,
        cl: Optional[np.ndarray],
        u_cc: np.ndarray,
    ) -> np.ndarray:
        """Replay ``SchedulingPolicy.select`` for the wide rows.

        Candidates are every ready node of every active job (EDF job
        order, topo node order), ordered by the scalar key tuple
        ``(primary, estimate, graph name, node name)`` and filtered by
        the feasibility walk — all with the scalar stack's exact float
        expressions.  Updates ``gsel``/``msel`` in place and returns
        the (possibly reduced) dispatch mask; rows whose scalar twin
        would raise ``SchedulingError`` are demoted.
        """
        w = np.flatnonzero(wide)
        gv = idx[w]
        nw = w.size
        G, M = self.G, self.M

        sched = schedulable[w]
        dl = np.where(sched, self.job_deadline[gv], np.inf)
        # active_jobs(): sorted by (abs_deadline, name); lexsort's last
        # key is primary, ties fall to the name rank.
        edf_order = np.lexsort((self.name_rank[gv], dl), axis=-1)
        rank = np.empty((nw, G), dtype=np.int64)
        np.put_along_axis(
            rank,
            edf_order,
            np.broadcast_to(np.arange(G, dtype=np.int64), (nw, G)),
            axis=1,
        )

        dn3 = self.done[gv]
        blocked = (self.pred[gv] & ~dn3[:, :, None, :]).any(axis=3)
        cand = self.exists[gv] & ~dn3 & ~blocked & sched[:, :, None]
        imm = ~self.rl_all[gv]
        if imm.any():
            # pUBS over MOST_IMMINENT: only the earliest-deadline
            # job's candidates (gsel from the narrow path).
            same_g = np.arange(G)[None, :] == gsel[w][:, None]
            cand &= ~(imm[:, None, None] & ~same_g[:, :, None])

        wrem = np.maximum(0.0, self.wcet[gv] - self.executed[gv])

        # Feasibility walk: candidate at EDF position r survives iff
        # for every position p < r, cum_wc(p) + wrem_cand stays within
        # s_eff * (d_p - t) + atol.  cumsum replays the sequential
        # prefix sum; MOST_IMMINENT rows skip the check like the
        # scalar ready list (needs_feasibility_check is False).
        feas = np.ones((nw, G, M), dtype=bool)
        fmask = self.feas_on[gv] & self.rl_all[gv]
        if fmask.any():
            rwc = np.where(sched, node_cl[w], 0.0)
            rwc_s = np.take_along_axis(rwc, edf_order, axis=1)
            cum = np.cumsum(rwc_s, axis=1)
            dl_s = np.take_along_axis(dl, edf_order, axis=1)
            bud = s_eff[w][:, None] * (dl_s - t[w][:, None]) + _FEAS_ATOL
            for p in range(G):
                kill = (
                    fmask[:, None, None]
                    & (rank > p)[:, :, None]
                    & (
                        cum[:, p][:, None, None] + wrem
                        > bud[:, p][:, None, None]
                    )
                )
                feas &= ~kill

        prio = self.prio_kind[gv]
        is_pubs = prio == _PRIO_PUBS
        k1 = np.where((prio == _PRIO_LTF)[:, None, None], -wrem, wrem)
        est = None
        if is_pubs.any():
            est = self._pubs_estimate(gv, wrem)
            score = self._pubs_score(
                w, gv, t, s_raw, est, wrem, d_eff, cl, u_cc
            )
            k1 = np.where(is_pubs[:, None, None], score, k1)

        # First feasible candidate in key order == the feasible
        # candidate minimizing the full tuple; resolve level by level.
        ok = (cand & feas).reshape(nw, G * M)
        ok_any = ok.any(axis=1)
        k1f = np.where(ok, k1.reshape(nw, G * M), np.inf)
        m1 = k1f.min(axis=1)
        tie = ok & (k1f == m1[:, None])
        if is_pubs.any():
            k2m = np.where(
                tie & is_pubs[:, None], est.reshape(nw, G * M), np.inf
            )
            m2 = k2m.min(axis=1)
            tie = np.where(
                is_pubs[:, None], tie & (k2m == m2[:, None]), tie
            )
        nrk = np.broadcast_to(
            self.name_rank[gv][:, :, None], (nw, G, M)
        ).reshape(nw, G * M)
        r3 = np.where(tie, nrk, _BIG_RANK)
        tie &= r3 == r3.min(axis=1)[:, None]
        r4 = np.where(tie, self.node_rank[gv].reshape(nw, G * M), _BIG_RANK)
        tie &= r4 == r4.min(axis=1)[:, None]
        sel = tie.argmax(axis=1)
        gsel_w = sel // M
        msel_w = sel % M

        bad = ~ok_any
        rnd = prio == _PRIO_RANDOM
        if rnd.any():
            # RandomPriority over ALL_RELEASED: shuffle the EDF-then-
            # topo candidate list (draw depends only on its length),
            # then take the first feasible in shuffled order.
            cand_s = np.take_along_axis(cand, edf_order[:, :, None], 1)
            feas_s = np.take_along_axis(feas, edf_order[:, :, None], 1)
            rngs = self._rngs
            for i in np.flatnonzero(rnd & ok_any):
                cols = np.flatnonzero(cand_s[i].reshape(-1))
                perm = list(range(cols.size))
                rngs[gv[i]].shuffle(perm)
                ff = feas_s[i].reshape(-1)
                chosen = -1
                for p in perm:
                    if ff[cols[p]]:
                        chosen = cols[p]
                        break
                if chosen < 0:
                    bad[i] = True
                    continue
                pos, mm = divmod(int(chosen), M)
                gsel_w[i] = edf_order[i, pos]
                msel_w[i] = mm

        if bad.any():
            self._demote(
                idx[w[bad]], "no feasible candidate (scalar raises)"
            )
            dispatch[w[bad]] = False
        good = ~bad
        gsel[w[good]] = gsel_w[good]
        msel[w[good]] = msel_w[good]
        return dispatch

    def _pubs_estimate(
        self, gv: np.ndarray, wrem: np.ndarray
    ) -> np.ndarray:
        """``estimator.estimate`` for every candidate lane.

        All four registry estimators are pure functions of simulation
        state, so estimating every lane (twice, in the scalar: score
        and order key) costs nothing in draws.  Non-pUBS rows get
        garbage lanes that are never read.
        """
        ek = self.est_kind[gv][:, None, None]
        wcet = self.wcet[gv]
        execd = self.executed[gv]
        lo = np.maximum(wrem, _EST_EPS)  # WorstCase == the clamp cap
        factor = self.est_factor[gv][:, None, None]
        raw = factor * wcet - execd  # ScaledEstimator
        if (self.est_kind[gv] == _EST_HISTORY).any():
            hist = self.hist[gv]
            ln = self.hist_len[gv]
            acc = np.zeros(ln.shape)
            for k in range(hist.shape[3]):
                acc = acc + np.where(k < ln, hist[:, :, :, k], 0.0)
            total = np.where(
                ln > 0, acc / np.maximum(ln, 1), factor * wcet
            )
            raw = np.where(ek == _EST_HISTORY, total - execd, raw)
        raw = np.where(
            ek == _EST_ORACLE,
            np.maximum(0.0, self.actual[gv] - execd),
            raw,
        )
        clamped = np.minimum(np.maximum(raw, _EST_EPS), lo)
        return np.where(ek == _EST_WORST, lo, clamped)

    def _pubs_score(
        self,
        w: np.ndarray,
        gv: np.ndarray,
        t: np.ndarray,
        s_raw: np.ndarray,
        est: np.ndarray,
        wrem: np.ndarray,
        d_eff: np.ndarray,
        cl: Optional[np.ndarray],
        u_cc: np.ndarray,
    ) -> np.ndarray:
        """``PUBS.score``: est / (s_now^2 - s_after^2), inf when the
        denominator is (numerically) non-positive.

        ``s_after`` is the DVS algorithm's hypothetical speed were the
        candidate to finish with ``est`` actual cycles.
        """
        nw = gv.size
        kindw = self.dvs_kind[gv]
        s_o = s_raw[w][:, None, None]
        s_ok = np.ones((nw, self.G, self.M))
        st = kindw == _DVS_STATIC
        if st.any():
            s_ok = np.where(
                st[:, None, None],
                self.static_u[gv][:, None, None],
                s_ok,
            )
        cc = self.is_cc[gv]
        if cc.any():
            delta = (est - wrem) / self.period[gv][:, :, None]
            s_ok = np.where(
                cc[:, None, None], u_cc[w][:, None, None] + delta, s_ok
            )
        la = self.is_la[gv]
        if la.any():
            # LaEDF.hypothetical_speed: lookahead at t + est/s_now with
            # the candidate graph's c_left shed by its wrem.
            dt = np.where(s_o > _LA_EPS, est / s_o, 0.0)
            t2 = t[w][:, None, None] + dt
            clw = cl[w]
            c4 = np.broadcast_to(
                clw[:, None, None, :], (nw, self.G, self.M, self.G)
            ).copy()
            for g in range(self.G):
                c4[:, g, :, g] = np.maximum(
                    0.0, clw[:, g, None] - wrem[:, g, :]
                )
            s_la = _la_lookahead(
                d_eff[w][:, None, None, :],
                c4,
                self.util[gv][:, None, None, :],
                self.present[gv][:, None, None, :],
                t2,
            )
            s_ok = np.where(la[:, None, None], s_la, s_ok)
        denom = s_o * s_o - s_ok * s_ok
        small = denom <= _LA_EPS
        return np.where(small, np.inf, est / np.where(small, 1.0, denom))

    # -- materialization -----------------------------------------------
    def _materialize(self) -> Dict[int, SimulationResult]:
        cols = self.cols
        order = np.argsort(cols.scen[: cols.n], kind="stable")
        counts = np.bincount(
            cols.scen[: cols.n], minlength=self.V
        )
        offsets = np.zeros(self.V + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])

        miss_by_scen = self._distribute(self._miss_log, 5)
        rel_by_scen = self._distribute(self._rel_log, 2)

        results: Dict[int, SimulationResult] = {}
        for v in range(self.V):
            if not self.active[v]:
                continue  # demoted: scalar re-run owns this item
            sel = order[offsets[v]:offsets[v + 1]]
            starts = cols.start[sel]
            durs = cols.dur[sel]
            speeds = cols.speed[sel]
            volts = cols.volt[sel]
            curs = cols.cur[sel]
            # Numeric guardrail: a NaN/inf anywhere in the trace means
            # some upstream arithmetic went off the rails for this
            # scenario (bad power-model inputs, degenerate frequency
            # tables, ...).  Demote it to the scalar engine, which
            # either produces finite values or raises a diagnosable
            # error — never silently return poisoned columns.
            finite = True
            for col in (starts, durs, speeds, volts, curs):
                if not np.isfinite(col).all():
                    finite = False
                    break
            if not finite:
                self.demoted[self.vec_ids[v]] = _NONFINITE_REASON
                continue
            trace = ExecutionTrace()
            tile = self._tiles.get(v)
            keys = cols.key[sel]
            names = self._key_names(v)
            if tile is None:
                trace.extend_columns(
                    starts, durs, speeds, volts, curs, keys, names
                )
            else:
                split, first, copies, hyper = tile[:4]
                trace.extend_columns(
                    starts[:split], durs[:split], speeds[:split],
                    volts[:split], curs[:split], keys[:split], names,
                )
                trace.extend_tiled(first, copies, hyper)
                trace.extend_columns(
                    starts[split:], durs[split:], speeds[split:],
                    volts[split:], curs[split:], keys[split:], names,
                )
            misses = self._misses_for(v, miss_by_scen[v], tile)
            releases = self._releases_for(v, rel_by_scen[v], tile)
            sim, horizon = self.items[self.vec_ids[v]]
            results[self.vec_ids[v]] = SimulationResult(
                trace=trace,
                horizon=float(horizon),
                misses=misses,
                released_jobs=int(self.released[v]),
                completed_jobs=int(self.completed_jobs[v]),
                completed_nodes=int(self.completed_nodes[v]),
                task_set=sim.task_set,
                processor=sim.processor,
                release_times=releases,
                tiled_cycles=int(self.tiled[v]),
            )
        return results

    def _distribute(self, log: List[tuple], width: int) -> List[tuple]:
        """Split chronological (scen, field...) chunks per scenario."""
        if not log:
            empty = tuple(np.empty(0) for _ in range(width - 1))
            return [empty] * self.V
        cat = [
            np.concatenate([chunk[f] for chunk in log])
            for f in range(width)
        ]
        scen = cat[0].astype(np.intp, copy=False)
        order = np.argsort(scen, kind="stable")
        counts = np.bincount(scen, minlength=self.V)
        offsets = np.zeros(self.V + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        out = []
        for v in range(self.V):
            sel = order[offsets[v]:offsets[v + 1]]
            out.append(tuple(col[sel] for col in cat[1:]))
        return out

    def _key_names(self, v: int) -> List[Tuple[str, str]]:
        names: List[Tuple[str, str]] = []
        gnames = self._graph_names[v]
        nnames = self._node_names[v]
        for g in range(self.G):
            for m in range(self.M + 1):
                if (
                    g < len(gnames)
                    and m < len(nnames[g])
                ):
                    names.append((gnames[g], nnames[g][m]))
                else:
                    names.append(("", ""))
        names.append((IDLE, ""))  # key G*(M+1): the idle sentinel
        return names

    def _misses_for(
        self, v: int, cols: tuple, tile: Optional[tuple]
    ) -> Tuple[DeadlineMiss, ...]:
        g_arr, j_arr, t_arr, d_arr = cols
        gnames = self._graph_names[v]
        base = [
            DeadlineMiss(
                gnames[int(g)], int(j), float(tt), float(dd)
            )
            for g, j, tt, dd in zip(g_arr, j_arr, t_arr, d_arr)
        ]
        if tile is None:
            return tuple(base)
        _, _, copies, hyper, miss0, miss1, _, _ = tile
        per_cycle = self._per_cycle_by_name[v]
        cycle = base[miss0:miss1]
        expanded: List[DeadlineMiss] = []
        for m in range(1, copies + 1):
            shift = m * hyper
            expanded.extend(
                DeadlineMiss(
                    x.graph,
                    x.job_index + m * per_cycle[x.graph],
                    x.time + shift,
                    x.detected + shift,
                )
                for x in cycle
            )
        return tuple(base[:miss1] + expanded + base[miss1:])

    def _releases_for(
        self, v: int, cols: tuple, tile: Optional[tuple]
    ) -> Tuple[float, ...]:
        (times,) = cols
        base = [float(r) for r in times]
        if tile is None:
            return tuple(base)
        _, _, copies, hyper, _, _, rel0, rel1 = tile
        cycle = base[rel0:rel1]
        expanded: List[float] = []
        for m in range(1, copies + 1):
            shift = m * hyper
            expanded.extend(r + shift for r in cycle)
        return tuple(base[:rel1] + expanded + base[rel1:])

"""Event-driven single-processor simulator for periodic task graphs.

The engine realizes the paper's execution model:

* task graphs release periodically (deadline = period);
* at every *release* and every *node end* the DVS algorithm recomputes
  the reference frequency and the scheduling policy picks the next task
  from the ready list (releases preempt the running node, which returns
  to the ready list with its remaining cycles — preemptive EDF);
* a fractional reference frequency is realized as the optimal
  two-adjacent-level mix, executed high-level-first so the current is
  locally non-increasing inside every dispatch interval;
* every dispatched slice is recorded in an :class:`ExecutionTrace`,
  whose :class:`~repro.sim.profile.CurrentProfile` is what the battery
  models consume.

Actual (as opposed to worst-case) cycle demands come from an
*actuals provider* ``(graph, node, job_index, wcet) -> cycles``,
defaulting to worst case; the paper's 20-100 % uniform workload lives
in :mod:`repro.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # import only for annotations; avoids a core<->sim cycle
    from ..core.methodology import SchedulingPolicy

from ..dvs.base import FrequencySetter
from ..errors import DeadlineMissError, SchedulingError
from ..processor.platform import Processor
from ..taskgraph.periodic import TaskGraphSet
from .profile import CurrentProfile
from .state import Candidate, GraphStatus, JobState, SchedulerView
from .trace import IDLE, ExecutionTrace

__all__ = [
    "Simulator",
    "SimulationResult",
    "ActualsProvider",
    "worst_case_actuals",
]

_EPS = 1e-9

ActualsProvider = Callable[[str, str, int, float], float]


def worst_case_actuals(
    graph: str, node: str, job_index: int, wc: float
) -> float:
    """Default provider: every node takes its full worst case."""
    return wc


@dataclass(frozen=True)
class DeadlineMiss:
    """A recorded deadline violation (only with ``on_miss='record'``)."""

    graph: str
    job_index: int
    time: float


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    trace: ExecutionTrace
    horizon: float
    misses: Tuple[DeadlineMiss, ...]
    released_jobs: int
    completed_jobs: int
    completed_nodes: int
    task_set: TaskGraphSet
    processor: Processor
    release_times: Tuple[float, ...]

    def profile(self, *, merge: bool = True) -> CurrentProfile:
        return self.trace.to_profile(merge=merge)

    @property
    def charge(self) -> float:
        """Battery charge drawn over the horizon (coulombs)."""
        return self.trace.charge()

    @property
    def energy(self) -> float:
        """Battery-side energy over the horizon (joules)."""
        return self.trace.energy(self.processor.power.v_bat)

    @property
    def mean_current(self) -> float:
        return self.charge / self.horizon

    def guideline1_holds(self, atol: float = 1e-9) -> bool:
        """Locally non-increasing reference current between releases.

        Evaluated on per-dispatch *mean* currents (label runs): the
        two-adjacent-level mix that realizes a fractional reference
        frequency toggles the instantaneous current inside a dispatch,
        but guideline 1 constrains the reference-frequency staircase,
        which the run means track.  Idle runs are exempt (an idle dip
        never hurts the battery and does not license a later step-up).

        Runs are coalesced columnar (same label *and* same release
        epoch — a node resuming after a release may legitimately
        continue at a higher frequency); only the staircase walk over
        the far-fewer runs stays scalar.
        """
        tr = self.trace
        n = len(tr)
        if n == 0:
            return True
        marks = np.asarray(
            sorted(set(float(t) for t in self.release_times))
        )
        starts = tr.starts
        # Number of marks at or before each segment start (within atol)
        # — the release epoch the segment belongs to.
        epoch = np.searchsorted(marks, starts + atol, side="right")
        ids = tr.label_ids
        head = np.empty(n, dtype=bool)
        head[0] = True
        head[1:] = (ids[1:] != ids[:-1]) | (epoch[1:] != epoch[:-1])
        head_idx = np.flatnonzero(head)
        run_start = starts[head_idx]
        run_dur = np.add.reduceat(tr.durations, head_idx)
        run_charge = np.add.reduceat(
            tr.durations * tr.currents, head_idx
        )
        run_idle = tr.idle[head_idx]

        mark_list = marks.tolist()
        mark_idx = 0
        ceiling = float("inf")
        for start, dur, charge, is_idle in zip(
            run_start.tolist(),
            run_dur.tolist(),
            run_charge.tolist(),
            run_idle.tolist(),
        ):
            while (
                mark_idx < len(mark_list)
                and mark_list[mark_idx] <= start + atol
            ):
                ceiling = float("inf")
                mark_idx += 1
            if is_idle or dur <= 0:
                continue
            mean_i = charge / dur
            if mean_i > ceiling + atol:
                return False
            ceiling = min(ceiling, mean_i)
        return True


class _DVSOracle:
    """Speed oracle backed by the run's live DVS algorithm."""

    def __init__(
        self, dvs: FrequencySetter, view: SchedulerView, s_now: float
    ) -> None:
        self._dvs = dvs
        self._view = view
        self._s_now = s_now

    def speed_now(self) -> float:
        return self._s_now

    def speed_after(self, cand: Candidate, estimate: float) -> float:
        return self._dvs.hypothetical_speed(self._view, cand, estimate)


class Simulator:
    """One run = one task set × one processor × one scheme instance.

    Parameters
    ----------
    task_set:
        The periodic task graphs to schedule.
    processor:
        The DVS platform (frequency table + power model).
    dvs:
        A *fresh* frequency setter (stateful across the run).
    policy:
        A *fresh* scheduling policy (priority function + ready list).
    actuals:
        Actual-cycles provider; defaults to worst case.
    on_miss:
        ``"raise"`` (default) raises :class:`DeadlineMissError`;
        ``"record"`` logs the miss, abandons the late job and goes on —
        used by the ablation that removes the feasibility check.
    """

    def __init__(
        self,
        task_set: TaskGraphSet,
        processor: Processor,
        dvs: FrequencySetter,
        policy: "SchedulingPolicy",
        *,
        actuals: Optional[ActualsProvider] = None,
        on_miss: str = "raise",
    ) -> None:
        if on_miss not in ("raise", "record"):
            raise SchedulingError(
                f"on_miss must be 'raise' or 'record', got {on_miss!r}"
            )
        self.task_set = task_set
        self.processor = processor
        self.dvs = dvs
        self.policy = policy
        self.actuals: ActualsProvider = (
            actuals if actuals is not None else worst_case_actuals
        )
        self.on_miss = on_miss

    # ------------------------------------------------------------------
    def run(self, horizon: float) -> SimulationResult:
        if not (horizon > 0):
            raise SchedulingError(f"horizon must be > 0, got {horizon}")
        trace = ExecutionTrace()
        next_release: Dict[str, float] = {
            g.name: g.phase for g in self.task_set
        }
        job_counter: Dict[str, int] = {g.name: 0 for g in self.task_set}
        jobs: Dict[str, JobState] = {}
        misses: List[DeadlineMiss] = []
        release_times: List[float] = []
        released = completed_jobs = completed_nodes = 0

        def make_view(t: float) -> SchedulerView:
            statuses = []
            for g in self.task_set:
                job = jobs.get(g.name)
                if job is not None and job.is_complete():
                    job = None  # finished instances are no longer schedulable
                statuses.append(
                    GraphStatus(g, job, next_release[g.name])
                )
            return SchedulerView(self.task_set, t, statuses)

        self.dvs.on_sim_start(make_view(0.0))

        t = 0.0
        while t < horizon - _EPS:
            # --- 1. process due releases --------------------------------
            newly: List[str] = []
            for g in self.task_set:
                while next_release[g.name] <= t + _EPS:
                    name = g.name
                    if name in jobs:
                        miss = DeadlineMiss(name, jobs[name].job_index, t)
                        if self.on_miss == "raise":
                            raise DeadlineMissError(
                                name, jobs[name].abs_deadline, t
                            )
                        misses.append(miss)
                        del jobs[name]  # abandon the late job
                    idx = job_counter[name]
                    job_counter[name] += 1
                    actual = {
                        node.name: self.actuals(
                            name, node.name, idx, node.wcet
                        )
                        for node in g.graph
                    }
                    jobs[name] = JobState(g, idx, next_release[name], actual)
                    release_times.append(next_release[name])
                    next_release[name] += g.period
                    released += 1
                    newly.append(name)
            view = make_view(t)
            for name in newly:
                status = next(s for s in view.graphs if s.name == name)
                self.dvs.on_release(view, status)

            t_next = min(min(next_release.values()), horizon)

            # --- 2. frequency setting and task selection ---------------
            s_raw = self.dvs.select_speed(view)
            oracle = _DVSOracle(self.dvs, view, s_raw)
            mix = self.processor.resolve(s_raw) if s_raw > 0 else None
            s_eff = (
                mix.average_speed(self.processor.f_max) if mix else 0.0
            )
            cand = (
                self.policy.select(view, s_eff, oracle)
                if s_eff > 0
                else None
            )

            if cand is None:
                # Idle until the next release (or the horizon).
                trace.record(
                    start=t,
                    duration=t_next - t,
                    graph=IDLE,
                    node="",
                    speed=0.0,
                    voltage=0.0,
                    current=self.processor.idle_current(),
                )
                t = t_next
                continue

            # --- 3. dispatch until completion or the next event --------
            # The two-level mix is laid over the *execution interval*
            # (to completion, or to the next release if that comes
            # first), so every dispatch's mean speed equals the
            # reference frequency exactly — this is what keeps the
            # per-dispatch current staircase faithful to f_ref.
            window = t_next - t
            remaining = cand.job.remaining_ac_node(cand.node)
            t_complete = remaining / s_eff
            finished = t_complete <= window + _EPS
            span = min(t_complete, window)
            chunks = self.processor.run_segments(s_raw, span)
            executed = 0.0
            for k, (dur, point, current) in enumerate(chunks):
                speed = point.frequency / self.processor.f_max
                if finished and k == len(chunks) - 1:
                    # Absorb float residue: the last chunk completes the
                    # node exactly.
                    cycles = remaining - executed
                else:
                    cycles = speed * dur
                trace.record(
                    t, dur, cand.graph_name, cand.node,
                    speed, point.voltage, current,
                )
                cand.job.advance_node(cand.node, cycles)
                executed += cycles
                t += dur

            if finished:
                completed_nodes += 1
                wc = cand.wc_full
                ac = cand.job.actual[cand.node]
                view = make_view(t)
                self.dvs.on_node_end(
                    view, cand.graph_name, cand.node, wc, ac,
                    cand.job.is_complete(),
                )
                self.policy.observe_completion(
                    cand.graph_name, cand.node, wc, ac
                )
                if cand.job.is_complete():
                    completed_jobs += 1
                    del jobs[cand.graph_name]
            else:
                # Window exhausted: land exactly on the event boundary to
                # avoid drift.
                t = t_next

        return SimulationResult(
            trace=trace,
            horizon=horizon,
            misses=tuple(misses),
            released_jobs=released,
            completed_jobs=completed_jobs,
            completed_nodes=completed_nodes,
            task_set=self.task_set,
            processor=self.processor,
            release_times=tuple(release_times),
        )

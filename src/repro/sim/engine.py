"""Event-driven single-processor simulator for periodic task graphs.

The engine realizes the paper's execution model:

* task graphs release periodically (deadline = period);
* at every *release* and every *node end* the DVS algorithm recomputes
  the reference frequency and the scheduling policy picks the next task
  from the ready list (releases preempt the running node, which returns
  to the ready list with its remaining cycles — preemptive EDF);
* a fractional reference frequency is realized as the optimal
  two-adjacent-level mix, executed high-level-first so the current is
  locally non-increasing inside every dispatch interval;
* every dispatched slice is recorded in an :class:`ExecutionTrace`,
  whose :class:`~repro.sim.profile.CurrentProfile` is what the battery
  models consume.

Actual (as opposed to worst-case) cycle demands come from an
*actuals provider* ``(graph, node, job_index, wcet) -> cycles``,
defaulting to worst case; the paper's 20-100 % uniform workload lives
in :mod:`repro.workloads`.

Steady-state fast-forward
-------------------------
Periodic task sets repeat: once the scheduler state at a hyperperiod
boundary equals the state one hyperperiod earlier *and* the two
hyperperiods dispatched the same cycle, every later hyperperiod is that
same cycle time-shifted.  ``run(horizon, fast=True)`` detects this by
fingerprinting the scheduler stack (per-graph job progress, DVS
internal state, priority/estimator state) at each boundary and, on
convergence, synthesizes the remaining full hyperperiods by tiling the
detected cycle's columnar trace segments instead of re-simulating them
— the same steady-state insight :mod:`repro.battery.kernels` exploits
for the battery ODEs, applied to the schedule itself.  The fast path
silently falls back to the naive event loop whenever it cannot be
exact: stochastic (job-dependent) actuals, non-zero phases, a
hyperperiod that floats cannot tile exactly, or fingerprints that never
converge (e.g. random priorities whose RNG state advances forever).
"""

from __future__ import annotations

import types
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # import only for annotations; avoids a core<->sim cycle
    from ..core.methodology import SchedulingPolicy

from ..dvs.base import FrequencySetter
from ..errors import DeadlineMissError, SchedulingError
from ..processor.platform import Processor
from ..taskgraph.periodic import TaskGraphSet
from .profile import CurrentProfile
from .state import Candidate, GraphStatus, JobState, SchedulerView
from .trace import IDLE, ExecutionTrace

__all__ = [
    "Simulator",
    "SimulationResult",
    "ActualsProvider",
    "worst_case_actuals",
]

#: Relative tolerance unit for time comparisons.  The engine scales it
#: by the task set's time scale (largest ``|phase| + period``), so the
#: horizon/release guards behave identically for a task set quoted in
#: seconds and the same set quoted in microseconds or hours.
_EPS = 1e-9

#: How many hyperperiods ``run(fast=True)`` simulates while probing for
#: a steady state before giving up and finishing naively.
_DETECT_LIMIT = 64

ActualsProvider = Callable[[str, str, int, float], float]
"""``(graph, node, job_index, wcet) -> cycles``.

Providers may additionally expose a ``job_invariant`` attribute
(truthy when the returned cycles do not depend on ``job_index``); the
steady-state fast path is only eligible when the provider declares it,
since tiling a detected cycle replays its per-job actuals verbatim.

A second opt-in, ``job_keyed``, declares that each draw is a pure
function of the ``(graph, node, job_index, wcet)`` key — independent
of call order or interleaving.  The vector engine uses it to pre-draw
whole per-job actuals tables at compile time for genuinely stochastic
workloads (:class:`repro.workloads.generator.UniformActuals` qualifies:
its draws are hash-keyed).  ``job_invariant`` implies the same
property trivially; providers with hidden call-order state must
declare neither.
"""


def worst_case_actuals(
    graph: str, node: str, job_index: int, wc: float
) -> float:
    """Default provider: every node takes its full worst case."""
    return wc


#: Worst-case demands are the same for every job of a node, so the
#: steady-state fast path may tile them.
worst_case_actuals.job_invariant = True


@dataclass(frozen=True)
class DeadlineMiss:
    """A recorded deadline violation (only with ``on_miss='record'``).

    ``time`` is the *missed absolute deadline* of the late job —
    matching what the ``on_miss='raise'`` path reports — while
    ``detected`` is the release instant at which the engine noticed the
    overrun and abandoned the job (the two coincide for deadline =
    period task sets with aligned releases, but ``detected`` can be
    later when another graph's release triggers the check first).
    """

    graph: str
    job_index: int
    time: float
    detected: float


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    trace: ExecutionTrace
    horizon: float
    misses: Tuple[DeadlineMiss, ...]
    released_jobs: int
    completed_jobs: int
    completed_nodes: int
    task_set: TaskGraphSet
    processor: Processor
    release_times: Tuple[float, ...]
    #: Hyperperiods synthesized by the steady-state fast path (0 when
    #: the run was fully simulated).
    tiled_cycles: int = 0

    @property
    def fast_forwarded(self) -> bool:
        """True when part of the horizon was tiled, not simulated."""
        return self.tiled_cycles > 0

    def profile(self, *, merge: bool = True) -> CurrentProfile:
        return self.trace.to_profile(merge=merge)

    @property
    def charge(self) -> float:
        """Battery charge drawn over the horizon (coulombs)."""
        return self.trace.charge()

    @property
    def energy(self) -> float:
        """Battery-side energy over the horizon (joules)."""
        return self.trace.energy(self.processor.power.v_bat)

    @property
    def mean_current(self) -> float:
        return self.charge / self.horizon

    def guideline1_holds(self, atol: float = 1e-9) -> bool:
        """Locally non-increasing reference current between releases.

        Evaluated on per-dispatch *mean* currents (label runs): the
        two-adjacent-level mix that realizes a fractional reference
        frequency toggles the instantaneous current inside a dispatch,
        but guideline 1 constrains the reference-frequency staircase,
        which the run means track.  Idle runs are exempt (an idle dip
        never hurts the battery and does not license a later step-up).

        Runs are coalesced columnar (same label *and* same release
        epoch — a node resuming after a release may legitimately
        continue at a higher frequency); only the staircase walk over
        the far-fewer runs stays scalar.
        """
        tr = self.trace
        n = len(tr)
        if n == 0:
            return True
        marks = np.asarray(
            sorted(set(float(t) for t in self.release_times))
        )
        starts = tr.starts
        # Number of marks at or before each segment start (within atol)
        # — the release epoch the segment belongs to.
        epoch = np.searchsorted(marks, starts + atol, side="right")
        ids = tr.label_ids
        head = np.empty(n, dtype=bool)
        head[0] = True
        head[1:] = (ids[1:] != ids[:-1]) | (epoch[1:] != epoch[:-1])
        head_idx = np.flatnonzero(head)
        run_start = starts[head_idx]
        run_dur = np.add.reduceat(tr.durations, head_idx)
        run_charge = np.add.reduceat(
            tr.durations * tr.currents, head_idx
        )
        run_idle = tr.idle[head_idx]

        mark_list = marks.tolist()
        mark_idx = 0
        ceiling = float("inf")
        for start, dur, charge, is_idle in zip(
            run_start.tolist(),
            run_dur.tolist(),
            run_charge.tolist(),
            run_idle.tolist(),
        ):
            while (
                mark_idx < len(mark_list)
                and mark_list[mark_idx] <= start + atol
            ):
                ceiling = float("inf")
                mark_idx += 1
            if is_idle or dur <= 0:
                continue
            mean_i = charge / dur
            if mean_i > ceiling + atol:
                return False
            ceiling = min(ceiling, mean_i)
        return True


class _DVSOracle:
    """Speed oracle backed by the run's live DVS algorithm."""

    def __init__(
        self, dvs: FrequencySetter, view: SchedulerView, s_now: float
    ) -> None:
        self._dvs = dvs
        self._view = view
        self._s_now = s_now

    def speed_now(self) -> float:
        return self._s_now

    def speed_after(self, cand: Candidate, estimate: float) -> float:
        return self._dvs.hypothetical_speed(self._view, cand, estimate)


def _freeze(obj: object, depth: int = 0) -> object:
    """Deterministic snapshot of scheduler-stack state for equality.

    Recursively converts the mutable containers the DVS algorithms,
    priority functions and estimators actually hold (dicts, deques,
    numpy arrays, ``Generator`` bit states, plain attribute objects)
    into comparable tuples.  Anything it cannot faithfully freeze maps
    to a fresh sentinel that never compares equal — which makes the
    fast path *fall back to the naive loop* rather than tile a cycle
    whose state it could not verify.
    """
    if depth > 10:
        return object()  # too deep to verify: never equal
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return ("ndarray", obj.shape, obj.dtype.str, obj.tobytes())
    if isinstance(obj, np.random.Generator):
        return ("rng", _freeze(obj.bit_generator.state, depth + 1))
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                (repr(k), _freeze(v, depth + 1))
                for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
            ),
        )
    if isinstance(obj, (list, tuple, deque)):
        return ("seq", tuple(_freeze(v, depth + 1) for v in obj))
    if isinstance(obj, (set, frozenset)):
        return (
            "set",
            tuple(sorted(repr(_freeze(v, depth + 1)) for v in obj)),
        )
    if isinstance(
        obj,
        (types.FunctionType, types.BuiltinFunctionType, types.MethodType),
    ):
        return ("fn", getattr(obj, "__module__", ""), obj.__qualname__)
    if isinstance(obj, type):
        return ("type", obj.__module__, obj.__qualname__)
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return (
            type(obj).__module__,
            type(obj).__qualname__,
            _freeze(attrs, depth + 1),
        )
    return object()  # opaque (e.g. __slots__) state: never equal


@dataclass
class _RunState:
    """Mutable state of one run, shared by the naive event loop, the
    steady-state detector and the tiling fast-forward."""

    t: float
    eps: float
    trace: ExecutionTrace
    next_release: Dict[str, float]
    job_counter: Dict[str, int]
    jobs: Dict[str, JobState]
    misses: List[DeadlineMiss] = field(default_factory=list)
    release_times: List[float] = field(default_factory=list)
    released: int = 0
    completed_jobs: int = 0
    completed_nodes: int = 0


class Simulator:
    """One run = one task set × one processor × one scheme instance.

    Parameters
    ----------
    task_set:
        The periodic task graphs to schedule.
    processor:
        The DVS platform (frequency table + power model).
    dvs:
        A *fresh* frequency setter (stateful across the run).
    policy:
        A *fresh* scheduling policy (priority function + ready list).
    actuals:
        Actual-cycles provider; defaults to worst case.
    on_miss:
        ``"raise"`` (default) raises :class:`DeadlineMissError`;
        ``"record"`` logs the miss, abandons the late job and goes on —
        used by the ablation that removes the feasibility check.
    """

    def __init__(
        self,
        task_set: TaskGraphSet,
        processor: Processor,
        dvs: FrequencySetter,
        policy: "SchedulingPolicy",
        *,
        actuals: Optional[ActualsProvider] = None,
        on_miss: str = "raise",
    ) -> None:
        if on_miss not in ("raise", "record"):
            raise SchedulingError(
                f"on_miss must be 'raise' or 'record', got {on_miss!r}"
            )
        self.task_set = task_set
        self.processor = processor
        self.dvs = dvs
        self.policy = policy
        self.actuals: ActualsProvider = (
            actuals if actuals is not None else worst_case_actuals
        )
        self.on_miss = on_miss

    # ------------------------------------------------------------------
    def _time_eps(self) -> float:
        """Comparison tolerance relative to the task set's time scale.

        An absolute ``1e-9`` is six orders too tight for a task set
        quoted with periods around ``1e5`` (a release landing one ulp
        past its exact instant would be missed for a full loop turn)
        and six orders too loose for one quoted in microseconds.
        """
        scale = max(
            (abs(g.phase) + g.period for g in self.task_set),
            default=1.0,
        )
        return _EPS * max(1.0, scale)

    def _view(self, st: _RunState, t: float) -> SchedulerView:
        statuses = []
        for g in self.task_set:
            job = st.jobs.get(g.name)
            if job is not None and job.is_complete():
                job = None  # finished instances are no longer schedulable
            statuses.append(
                GraphStatus(g, job, st.next_release[g.name])
            )
        return SchedulerView(self.task_set, t, statuses)

    # ------------------------------------------------------------------
    def run(
        self,
        horizon: float,
        *,
        fast: bool = False,
        detect_limit: int = _DETECT_LIMIT,
    ) -> SimulationResult:
        """Simulate ``[0, horizon)``.

        Parameters
        ----------
        horizon:
            Simulated time span; must be ``> 0``.  Releases due
            exactly at the horizon are not released.
        fast:
            Look for a steady-state dispatch cycle at hyperperiod
            boundaries and tile it across the remaining horizon (see
            the module docstring).  The fast path is opportunistic:
            it requires job-invariant actuals, zero phases and a
            converging state fingerprint, and degrades to the plain
            event loop whenever it cannot guarantee equivalence — so
            ``fast=True`` is always safe to request.
        detect_limit:
            How many hyperperiods are probed for convergence before
            the fast path gives up (``< 2`` disables it).

        Returns
        -------
        SimulationResult
            The columnar trace plus counts, misses, release instants
            and derived charge/energy; ``fast_forwarded`` and
            ``tiled_cycles`` report whether/how much the fast path
            engaged.

        For many independent scenarios, consider the lock-step
        struct-of-arrays engine (:func:`repro.sim.vector.
        run_vectorized` / ``ScenarioBatch(engine="vector")``), which
        produces bit-identical results per scenario.
        """
        if not (horizon > 0):
            raise SchedulingError(f"horizon must be > 0, got {horizon}")
        horizon = float(horizon)
        st = _RunState(
            t=0.0,
            eps=self._time_eps(),
            trace=ExecutionTrace(),
            next_release={
                g.name: g.release_time(0) for g in self.task_set
            },
            job_counter={g.name: 0 for g in self.task_set},
            jobs={},
        )
        self.dvs.on_sim_start(self._view(st, 0.0))
        tiled = (
            self._fast_forward(st, horizon, detect_limit) if fast else 0
        )
        self._advance(st, horizon)
        return SimulationResult(
            trace=st.trace,
            horizon=horizon,
            misses=tuple(st.misses),
            released_jobs=st.released,
            completed_jobs=st.completed_jobs,
            completed_nodes=st.completed_nodes,
            task_set=self.task_set,
            processor=self.processor,
            release_times=tuple(st.release_times),
            tiled_cycles=tiled,
        )

    # ------------------------------------------------------------------
    def _advance(self, st: _RunState, until: float) -> None:
        """The event loop: simulate from ``st.t`` up to ``until``."""
        while st.t < until - st.eps:
            # --- 1. process due releases --------------------------------
            newly: List[str] = []
            for g in self.task_set:
                name = g.name
                while st.next_release[name] <= st.t + st.eps:
                    job = st.jobs.get(name)
                    if job is not None:
                        if self.on_miss == "raise":
                            raise DeadlineMissError(
                                name, job.abs_deadline, st.t
                            )
                        st.misses.append(
                            DeadlineMiss(
                                name,
                                job.job_index,
                                job.abs_deadline,
                                st.t,
                            )
                        )
                        del st.jobs[name]  # abandon the late job
                    idx = st.job_counter[name]
                    st.job_counter[name] = idx + 1
                    actual = {
                        node.name: self.actuals(
                            name, node.name, idx, node.wcet
                        )
                        for node in g.graph
                    }
                    st.jobs[name] = JobState(
                        g, idx, st.next_release[name], actual
                    )
                    st.release_times.append(st.next_release[name])
                    # Exact release clock: the k-th release is
                    # phase + k·period, not an accumulated sum (which
                    # drifts by an ulp per period and eventually
                    # detaches releases from hyperperiod boundaries).
                    st.next_release[name] = g.release_time(idx + 1)
                    st.released += 1
                    newly.append(name)
            view = self._view(st, st.t)
            for name in newly:
                status = next(s for s in view.graphs if s.name == name)
                self.dvs.on_release(view, status)

            t_next = min(min(st.next_release.values()), until)

            # --- 2. frequency setting and task selection ---------------
            s_raw = self.dvs.select_speed(view)
            oracle = _DVSOracle(self.dvs, view, s_raw)
            mix = self.processor.resolve(s_raw) if s_raw > 0 else None
            s_eff = (
                mix.average_speed(self.processor.f_max) if mix else 0.0
            )
            cand = (
                self.policy.select(view, s_eff, oracle)
                if s_eff > 0
                else None
            )

            if cand is None:
                # Idle until the next release (or the horizon).
                st.trace.record(
                    start=st.t,
                    duration=t_next - st.t,
                    graph=IDLE,
                    node="",
                    speed=0.0,
                    voltage=0.0,
                    current=self.processor.idle_current(),
                )
                st.t = t_next
                continue

            # --- 3. dispatch until completion or the next event --------
            # The two-level mix is laid over the *execution interval*
            # (to completion, or to the next release if that comes
            # first), so every dispatch's mean speed equals the
            # reference frequency exactly — this is what keeps the
            # per-dispatch current staircase faithful to f_ref.
            window = t_next - st.t
            remaining = cand.job.remaining_ac_node(cand.node)
            t_complete = remaining / s_eff
            finished = t_complete <= window + _EPS
            span = min(t_complete, window)
            chunks = self.processor.run_segments(s_raw, span)
            executed = 0.0
            for k, (dur, point, current) in enumerate(chunks):
                speed = point.frequency / self.processor.f_max
                if finished and k == len(chunks) - 1:
                    # Absorb float residue: the last chunk completes the
                    # node exactly.
                    cycles = remaining - executed
                else:
                    cycles = speed * dur
                st.trace.record(
                    st.t, dur, cand.graph_name, cand.node,
                    speed, point.voltage, current,
                )
                cand.job.advance_node(cand.node, cycles)
                executed += cycles
                st.t += dur

            if finished:
                st.completed_nodes += 1
                wc = cand.wc_full
                ac = cand.job.actual[cand.node]
                view = self._view(st, st.t)
                self.dvs.on_node_end(
                    view, cand.graph_name, cand.node, wc, ac,
                    cand.job.is_complete(),
                )
                self.policy.observe_completion(
                    cand.graph_name, cand.node, wc, ac
                )
                if cand.job.is_complete():
                    st.completed_jobs += 1
                    del st.jobs[cand.graph_name]
            else:
                # Window exhausted: land exactly on the event boundary to
                # avoid drift.
                st.t = t_next

    # -- steady-state fast-forward -------------------------------------
    def _fast_eligible(
        self, horizon: float
    ) -> Optional[Tuple[float, Dict[str, int]]]:
        """The (hyperperiod, releases-per-cycle) pair, or ``None``.

        Tiling is exact only when (a) actuals declare themselves
        job-invariant, (b) all phases are zero so every hyperperiod
        boundary is a release instant for every graph (the event loop
        then never splits a segment at a boundary), and (c) each
        period tiles the hyperperiod exactly in float arithmetic, so
        shifted release instants stay bit-identical to the naive
        release clock.
        """
        if not getattr(self.actuals, "job_invariant", False):
            return None
        if any(g.phase != 0.0 for g in self.task_set):
            return None
        hyper = float(self.task_set.hyperperiod())
        if not (np.isfinite(hyper) and hyper > 0):
            return None
        per_cycle: Dict[str, int] = {}
        for g in self.task_set:
            k = int(round(hyper / g.period))
            if k < 1 or k * g.period != hyper:
                return None
            per_cycle[g.name] = k
        if horizon < 3.0 * hyper:
            return None  # nothing to gain: detect needs 2, tile needs 1
        return hyper, per_cycle

    def _fingerprint(
        self, st: _RunState, boundary: float
    ) -> Tuple[object, ...]:
        """Scheduler-stack state at ``boundary``, time-shifted to it."""
        releases = tuple(
            (name, st.next_release[name] - boundary)
            for name in sorted(st.next_release)
        )
        jobs = tuple(
            (
                name,
                st.jobs[name].job_index - st.job_counter[name],
                st.jobs[name].release - boundary,
                st.jobs[name].abs_deadline - boundary,
                _freeze(st.jobs[name].executed),
                _freeze(st.jobs[name].completed),
                _freeze(st.jobs[name].actual),
            )
            for name in sorted(st.jobs)
        )
        return (
            releases,
            jobs,
            _freeze(self.dvs),
            _freeze(self.policy),
        )

    @staticmethod
    def _cycles_match(
        trace: ExecutionTrace,
        prev: Tuple[int, int],
        cur: Tuple[int, int],
        eps: float,
    ) -> bool:
        """Did two consecutive hyperperiods dispatch the same cycle?

        Labels, speeds, operating points and currents must match
        bitwise; starts (relative to the cycle) and durations are
        allowed ulp-level dust, because the same subtraction
        ``t_next - t`` rounds differently at different absolute times.
        """
        a0, a1 = prev
        b0, b1 = cur
        if a1 - a0 != b1 - b0 or a1 == a0:
            return False
        ids = trace.label_ids
        if not np.array_equal(ids[a0:a1], ids[b0:b1]):
            return False
        for col in (trace.speeds, trace.voltages, trace.currents):
            if not np.array_equal(col[a0:a1], col[b0:b1]):
                return False
        da, db = trace.durations[a0:a1], trace.durations[b0:b1]
        if not np.allclose(da, db, rtol=1e-9, atol=eps):
            return False
        sa, sb = trace.starts[a0:a1], trace.starts[b0:b1]
        return bool(
            np.allclose(sa - sa[0], sb - sb[0], rtol=1e-9, atol=eps)
        )

    def _fast_forward(
        self, st: _RunState, horizon: float, detect_limit: int
    ) -> int:
        """Detect a steady-state hyperperiod and tile it; returns the
        number of hyperperiods synthesized (0 = fell back to naive)."""
        if detect_limit < 2:
            return 0  # convergence needs at least two observed cycles
        eligible = self._fast_eligible(horizon)
        if eligible is None:
            return 0
        hyper, per_cycle = eligible
        prev_fp: Optional[Tuple[object, ...]] = None
        prev_seg: Optional[Tuple[int, int]] = None
        for k in range(1, detect_limit + 1):
            boundary = k * hyper
            if boundary > horizon - hyper + st.eps:
                return 0  # no full hyperperiod left to tile
            marks = (
                len(st.trace),
                len(st.misses),
                len(st.release_times),
                st.released,
                st.completed_jobs,
                st.completed_nodes,
            )
            self._advance(st, boundary)
            if abs(st.t - boundary) > st.eps:
                # The event loop stopped well short of the boundary
                # (it only ever does within tolerance); cycle cuts are
                # not aligned here, so restart detection.
                prev_fp = prev_seg = None
                continue
            seg = (marks[0], len(st.trace))
            fp = self._fingerprint(st, boundary)
            if (
                prev_fp is not None
                and prev_seg is not None
                and fp == prev_fp
                and self._cycles_match(st.trace, prev_seg, seg, st.eps)
            ):
                copies = int((horizon - boundary) / hyper)
                while boundary + (copies + 1) * hyper <= horizon:
                    copies += 1
                while copies > 0 and boundary + copies * hyper > horizon:
                    copies -= 1
                if copies < 1:
                    return 0
                self._tile(st, boundary, copies, hyper, per_cycle, marks)
                return copies
            prev_fp, prev_seg = fp, seg
        return 0

    def _tile(
        self,
        st: _RunState,
        boundary: float,
        copies: int,
        hyper: float,
        per_cycle: Dict[str, int],
        marks: Tuple[int, int, int, int, int, int],
    ) -> None:
        """Replay the detected cycle ``copies`` times by bookkeeping."""
        seg0, miss0, rel0, released0, cjobs0, cnodes0 = marks
        st.trace.extend_tiled(seg0, copies, hyper)
        cycle_misses = st.misses[miss0:]
        cycle_releases = st.release_times[rel0:]
        for m in range(1, copies + 1):
            shift = m * hyper
            st.misses.extend(
                DeadlineMiss(
                    x.graph,
                    x.job_index + m * per_cycle[x.graph],
                    x.time + shift,
                    x.detected + shift,
                )
                for x in cycle_misses
            )
            st.release_times.extend(r + shift for r in cycle_releases)
        st.released += copies * (st.released - released0)
        st.completed_jobs += copies * (st.completed_jobs - cjobs0)
        st.completed_nodes += copies * (st.completed_nodes - cnodes0)
        # In-flight jobs and release clocks jump forward by whole
        # cycles; recomputing from the exact release formula keeps them
        # bit-identical to what the naive loop would hold here.
        for name, job in st.jobs.items():
            job.job_index += copies * per_cycle[name]
            job.release = job.ptg.release_time(job.job_index)
            job.abs_deadline = job.release + job.ptg.deadline
        for g in self.task_set:
            st.job_counter[g.name] += copies * per_cycle[g.name]
            st.next_release[g.name] = g.release_time(
                st.job_counter[g.name]
            )
        st.t = boundary + copies * hyper

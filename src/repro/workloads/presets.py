"""Canonical scenarios lifted verbatim from the paper's figures.

* :func:`fig4_pair` — the Figure 4 motivational example: two
  independent tasks, common deadline 10, WCETs 4 and 6, with the two
  actual-computation cases (40 %/60 % and 60 %/40 %).
* :func:`fig5_set` — the Figure 5 trace example: T1 (one task, wc 5,
  D 20), T2 (one task, wc 5, D 50), T3 (three tasks, wc 5 each, D 100);
  utilization 0.5, all tasks at worst case.
"""

from __future__ import annotations

from typing import Dict

from ..taskgraph.graph import TaskGraph, TaskNode
from ..taskgraph.periodic import PeriodicTaskGraph, TaskGraphSet

__all__ = ["fig4_pair", "fig4_cases", "fig5_set", "fig5_actuals"]


def fig4_pair() -> TaskGraph:
    """Two independent tasks: task1 wc=4, task2 wc=6, common deadline 10."""
    return TaskGraph(
        "fig4",
        [TaskNode("task1", 4.0), TaskNode("task2", 6.0)],
        [],
    )


def fig4_cases() -> Dict[str, Dict[str, float]]:
    """The two actual-computation cases of Figure 4.

    Case 1: tasks take 40 % and 60 % of their worst cases; STF recovers
    more slack.  Case 2: 60 % and 40 %; LTF wins.  Values are actual
    cycles (fractions times the WCETs 4 and 6).
    """
    return {
        "case1": {"task1": 0.4 * 4.0, "task2": 0.6 * 6.0},
        "case2": {"task1": 0.6 * 4.0, "task2": 0.4 * 6.0},
    }


def fig5_set() -> TaskGraphSet:
    """The three periodic task graphs of the Figure 5 trace example.

    T1: single task wc=5, D=20; T2: single task wc=5, D=50; T3: three
    independent tasks wc=5 each, D=100.  U = 5/20 + 5/50 + 15/100 = 0.5,
    so f_ref = 0.5 f_max, constant while every task takes its worst
    case.
    """
    t1 = TaskGraph("T1", [TaskNode("a", 5.0)], [])
    t2 = TaskGraph("T2", [TaskNode("a", 5.0)], [])
    t3 = TaskGraph(
        "T3",
        [TaskNode("a", 5.0), TaskNode("b", 5.0), TaskNode("c", 5.0)],
        [],
    )
    return TaskGraphSet(
        [
            PeriodicTaskGraph(t1, 20.0),
            PeriodicTaskGraph(t2, 50.0),
            PeriodicTaskGraph(t3, 100.0),
        ]
    )


def fig5_actuals(graph: str, node: str, job_index: int, wc: float) -> float:
    """Figure 5 assumes every task takes its worst case."""
    return wc

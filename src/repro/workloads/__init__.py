"""Workload generation: the paper's §5 model and figure presets."""

from .generator import PERIOD_MENU, UniformActuals, paper_task_set
from .presets import fig4_cases, fig4_pair, fig5_actuals, fig5_set

__all__ = [
    "UniformActuals",
    "paper_task_set",
    "PERIOD_MENU",
    "fig4_pair",
    "fig4_cases",
    "fig5_set",
    "fig5_actuals",
]

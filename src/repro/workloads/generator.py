"""The paper's evaluation workload (§5).

"Task graphs were generated from TGFF with random dependencies and the
worst case computation of each node was chosen randomly following a
uniform distribution.  Utilization of the system was kept to 70 %.
Actual computation of a task is assumed to be chosen at random between
20 % and 100 % of the WCET."

:func:`paper_task_set` builds a periodic set in exactly that shape
(periods drawn from a small harmonic-friendly menu, then the whole set
rescaled to the target utilization so hyperperiods stay bounded);
:class:`UniformActuals` is the 20-100 % actuals provider, keyed by
``(graph, node, job_index)`` so *every scheme sees the identical
workload* regardless of the order in which it asks.
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import TaskGraphError
from ..taskgraph._scale import scale_wcets
from ..taskgraph.periodic import PeriodicTaskGraph, TaskGraphSet
from ..taskgraph.tgff import random_taskgraph_series

__all__ = ["UniformActuals", "paper_task_set", "PERIOD_MENU"]

#: Unscaled period choices; LCM = 400, so a scaled set's hyperperiod is
#: at most 100x its smallest period.
PERIOD_MENU: Tuple[float, ...] = (
    4.0, 5.0, 8.0, 10.0, 16.0, 20.0, 25.0, 40.0, 50.0,
)


class UniformActuals:
    """Actual cycles uniform in ``[low, high] * wcet``, reproducibly.

    Each ``(graph, node, job_index)`` triple gets an independent draw
    derived from the seed by hashing the key, so the value a node gets
    does not depend on when (or whether) other schemes query it.
    """

    def __init__(
        self, low: float = 0.2, high: float = 1.0, seed: int = 0
    ) -> None:
        if not (0 < low <= high <= 1):
            raise TaskGraphError(
                f"need 0 < low <= high <= 1, got low={low}, high={high}"
            )
        self.low = float(low)
        self.high = float(high)
        self.seed = int(seed)

    @property
    def job_invariant(self) -> bool:
        """Whether draws are independent of ``job_index``.

        Only true for the degenerate ``low == high`` provider (every
        job gets ``low * wcet`` exactly); the genuinely stochastic
        workload opts out of the engine's steady-state fast path,
        which may only tile cycles whose per-job actuals repeat.
        """
        return self.low == self.high

    def __call__(
        self, graph: str, node: str, job_index: int, wc: float
    ) -> float:
        key = np.random.SeedSequence(
            [
                self.seed,
                zlib.crc32(graph.encode()),
                zlib.crc32(node.encode()),
                job_index,
            ]
        )
        u = np.random.default_rng(key).random()
        return wc * (self.low + (self.high - self.low) * u)


def paper_task_set(
    n_graphs: int,
    *,
    utilization: float = 0.7,
    n_tasks_range: Tuple[int, int] = (5, 15),
    edge_prob: float = 0.3,
    wcet_range: Tuple[float, float] = (1.0, 10.0),
    period_menu: Sequence[float] = PERIOD_MENU,
    seed: Optional[int] = 0,
) -> TaskGraphSet:
    """A random periodic task-graph set at the paper's operating point.

    Graph structure and WCETs follow the TGFF-style generator; each
    graph draws a period from ``period_menu`` and every WCET is then
    uniformly rescaled so the set's worst-case utilization hits the
    target (70 % in every paper experiment).  Scaling *WCETs* rather
    than periods keeps periods on the harmonic-friendly menu, so the
    hyperperiod stays bounded (LCM of the default menu is 400).
    """
    if n_graphs < 1:
        raise TaskGraphError(f"n_graphs must be >= 1, got {n_graphs}")
    if not (0 < utilization <= 1):
        raise TaskGraphError(
            f"utilization must be in (0, 1], got {utilization}"
        )
    rng = np.random.default_rng(seed)
    graphs = random_taskgraph_series(
        n_graphs,
        n_tasks_range=n_tasks_range,
        edge_prob=edge_prob,
        wcet_range=wcet_range,
        rng=rng,
    )
    menu = np.asarray(period_menu, dtype=float)
    if menu.size == 0 or np.any(menu <= 0):
        raise TaskGraphError(f"bad period menu {period_menu!r}")
    periods = [float(rng.choice(menu)) for _ in graphs]
    u_raw = sum(g.total_wcet / p for g, p in zip(graphs, periods))
    factor = utilization / u_raw
    periodic = [
        PeriodicTaskGraph(scale_wcets(g, factor), p)
        for g, p in zip(graphs, periods)
    ]
    return TaskGraphSet(periodic)

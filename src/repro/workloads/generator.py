"""The paper's evaluation workload (§5).

"Task graphs were generated from TGFF with random dependencies and the
worst case computation of each node was chosen randomly following a
uniform distribution.  Utilization of the system was kept to 70 %.
Actual computation of a task is assumed to be chosen at random between
20 % and 100 % of the WCET."

:func:`paper_task_set` builds a periodic set in exactly that shape
(periods drawn from a small harmonic-friendly menu, then the whole set
rescaled to the target utilization so hyperperiods stay bounded);
:class:`UniformActuals` is the 20-100 % actuals provider, keyed by
``(graph, node, job_index)`` so *every scheme sees the identical
workload* regardless of the order in which it asks.
"""

from __future__ import annotations

import sys
import zlib
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import TaskGraphError
from ..taskgraph._scale import scale_wcets
from ..taskgraph.periodic import PeriodicTaskGraph, TaskGraphSet
from ..taskgraph.tgff import random_taskgraph_series

__all__ = ["UniformActuals", "paper_task_set", "PERIOD_MENU"]

#: Unscaled period choices; LCM = 400, so a scaled set's hyperperiod is
#: at most 100x its smallest period.
PERIOD_MENU: Tuple[float, ...] = (
    4.0, 5.0, 8.0, 10.0, 16.0, 20.0, 25.0, 40.0, 50.0,
)


# -- batched hash-keyed draws ------------------------------------------
#
# ``UniformActuals.__call__`` builds a fresh ``SeedSequence`` + PCG64
# per draw (~25 us each), which dominates the vector engine's compile
# phase when it pre-draws per-job actuals tables.  The helpers below
# replay numpy's exact pipeline — SeedSequence entropy mixing,
# ``generate_state(4, uint64)``, PCG64 seeding, and the first
# ``random()`` double — as uint32/uint64 array arithmetic over the job
# axis, so a whole job column comes out in a handful of numpy ops with
# bit-identical values.  The constants are SeedSequence's and PCG64's
# published ones; tests pin equality draw-by-draw against ``__call__``.

_SS_XSHIFT = np.uint32(16)
_SS_INIT_A = 0x43B0D7E5
_SS_MULT_A = 0x931E8875
_SS_INIT_B = 0x8B51F9DD
_SS_MULT_B = 0x58F38DED
_SS_MIX_L = np.uint32(0xCA01F9DD)
_SS_MIX_R = np.uint32(0x4973F715)
_U32_MASK = (1 << 32) - 1

#: PCG64's default 128-bit multiplier, split into 64-bit halves.
_PCG_MUL_HI = np.uint64(2549297995355413924)
_PCG_MUL_LO = np.uint64(4865540595714422341)

_M32 = np.uint64(0xFFFFFFFF)
_S32 = np.uint64(32)


def _mul128(ah, al, bh, bl):
    """(ah:al) * (bh:bl) mod 2**128 as uint64-half arrays."""
    a_lo = al & _M32
    a_hi = al >> _S32
    b_lo = bl & _M32
    b_hi = bl >> _S32
    ll = a_lo * b_lo
    lh = a_lo * b_hi
    hl = a_hi * b_lo
    mid = (ll >> _S32) + (lh & _M32) + (hl & _M32)
    lo = (ll & _M32) | ((mid & _M32) << _S32)
    hi = a_hi * b_hi + (lh >> _S32) + (hl >> _S32) + (mid >> _S32)
    hi = hi + al * bh + ah * bl
    return hi, lo


def _add128(ah, al, bh, bl):
    lo = al + bl
    return ah + bh + (lo < al).astype(np.uint64), lo


def _batch_uniform01(seed: int, graph_key: int, node_key: int,
                     n_jobs: int) -> np.ndarray:
    """The first ``random()`` double of
    ``default_rng(SeedSequence([seed, graph_key, node_key, j]))`` for
    ``j`` in ``0..n_jobs-1``, bit-identically, as one array."""
    jobs = np.arange(n_jobs, dtype=np.uint32)
    ent = (
        np.full(n_jobs, seed, dtype=np.uint32),
        np.full(n_jobs, graph_key, dtype=np.uint32),
        np.full(n_jobs, node_key, dtype=np.uint32),
        jobs,
    )
    # SeedSequence.mix_entropy: the hash constant advances per hashmix
    # call (a scalar sequence shared by every lane).
    hc = [_SS_INIT_A]

    def hashmix(v):
        v = v ^ np.uint32(hc[0])
        hc[0] = (hc[0] * _SS_MULT_A) & _U32_MASK
        v = v * np.uint32(hc[0])
        return v ^ (v >> _SS_XSHIFT)

    def mix(x, y):
        r = (_SS_MIX_L * x) - (_SS_MIX_R * y)
        return r ^ (r >> _SS_XSHIFT)

    pool = [hashmix(ent[i]) for i in range(4)]
    for i_src in range(4):
        for i_dst in range(4):
            if i_src != i_dst:
                pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))

    # generate_state(4, uint64): 8 hashed uint32 words off the cycled
    # pool, viewed pairwise as little-endian uint64s.
    hc[0] = _SS_INIT_B
    words = []
    for i in range(8):
        v = pool[i % 4] ^ np.uint32(hc[0])
        hc[0] = (hc[0] * _SS_MULT_B) & _U32_MASK
        v = v * np.uint32(hc[0])
        words.append(v ^ (v >> _SS_XSHIFT))
    w64 = [
        words[2 * k].astype(np.uint64)
        | (words[2 * k + 1].astype(np.uint64) << _S32)
        for k in range(4)
    ]
    seed_hi, seed_lo, inc_hi, inc_lo = w64

    # PCG64 srandom: inc = (initseq << 1) | 1; state = 0 stepped once
    # (-> inc), plus initstate, stepped again; then one more step for
    # the first output.
    ih = (inc_hi << np.uint64(1)) | (inc_lo >> np.uint64(63))
    il = (inc_lo << np.uint64(1)) | np.uint64(1)
    sh, sl = _add128(ih, il, seed_hi, seed_lo)
    sh, sl = _mul128(sh, sl, _PCG_MUL_HI, _PCG_MUL_LO)
    sh, sl = _add128(sh, sl, ih, il)
    sh, sl = _mul128(sh, sl, _PCG_MUL_HI, _PCG_MUL_LO)
    sh, sl = _add128(sh, sl, ih, il)

    # Output XSL-RR 128/64, then random_standard_double.
    rot = sh >> np.uint64(58)
    x = sh ^ sl
    out = (x >> rot) | (x << ((np.uint64(64) - rot) & np.uint64(63)))
    return (out >> np.uint64(11)).astype(np.float64) * (
        1.0 / 9007199254740992.0
    )


class UniformActuals:
    """Actual cycles uniform in ``[low, high] * wcet``, reproducibly.

    Each ``(graph, node, job_index)`` triple gets an independent draw
    derived from the seed by hashing the key, so the value a node gets
    does not depend on when (or whether) other schemes query it.
    """

    #: Draws are a pure function of ``(graph, node, job_index, wcet)``
    #: — hash-keyed, never dependent on call order or interleaving —
    #: so the vector engine may pre-draw whole per-job tables at
    #: compile time and still hand every job the exact value the
    #: scalar engine would have drawn at its release instant.
    job_keyed = True

    def __init__(
        self, low: float = 0.2, high: float = 1.0, seed: int = 0
    ) -> None:
        if not (0 < low <= high <= 1):
            raise TaskGraphError(
                f"need 0 < low <= high <= 1, got low={low}, high={high}"
            )
        self.low = float(low)
        self.high = float(high)
        self.seed = int(seed)

    @property
    def job_invariant(self) -> bool:
        """Whether draws are independent of ``job_index``.

        Only true for the degenerate ``low == high`` provider (every
        job gets ``low * wcet`` exactly); the genuinely stochastic
        workload opts out of the engine's steady-state fast path,
        which may only tile cycles whose per-job actuals repeat.
        """
        return self.low == self.high

    def __call__(
        self, graph: str, node: str, job_index: int, wc: float
    ) -> float:
        key = np.random.SeedSequence(
            [
                self.seed,
                zlib.crc32(graph.encode()),
                zlib.crc32(node.encode()),
                job_index,
            ]
        )
        u = np.random.default_rng(key).random()
        return wc * (self.low + (self.high - self.low) * u)

    def draw_jobs(
        self, graph: str, node: str, n_jobs: int, wc: float
    ) -> np.ndarray:
        """Draws for ``job_index`` 0..``n_jobs``-1, bit-identical to
        calling ``self(graph, node, j, wc)`` per index.

        Used by the vector engine's compile phase, which pre-draws
        whole per-job tables; the batched hash pipeline cuts the cost
        per draw by more than an order of magnitude.  Falls back to
        the per-call path whenever the fast path's preconditions (a
        uint32-coercible key, a little-endian host) do not hold.
        """
        # The array pipeline costs ~80 small numpy ops regardless of
        # length; below a handful of draws the per-call path wins.
        if n_jobs < 4 or not (
            0 <= self.seed < 2**32
            and 0 <= n_jobs < 2**32
            and sys.byteorder == "little"
        ):
            return np.array(
                [self(graph, node, j, wc) for j in range(n_jobs)]
            )
        u = _batch_uniform01(
            self.seed,
            zlib.crc32(graph.encode()),
            zlib.crc32(node.encode()),
            n_jobs,
        )
        return wc * (self.low + (self.high - self.low) * u)


def paper_task_set(
    n_graphs: int,
    *,
    utilization: float = 0.7,
    n_tasks_range: Tuple[int, int] = (5, 15),
    edge_prob: float = 0.3,
    wcet_range: Tuple[float, float] = (1.0, 10.0),
    period_menu: Sequence[float] = PERIOD_MENU,
    seed: Optional[int] = 0,
) -> TaskGraphSet:
    """A random periodic task-graph set at the paper's operating point.

    Graph structure and WCETs follow the TGFF-style generator; each
    graph draws a period from ``period_menu`` and every WCET is then
    uniformly rescaled so the set's worst-case utilization hits the
    target (70 % in every paper experiment).  Scaling *WCETs* rather
    than periods keeps periods on the harmonic-friendly menu, so the
    hyperperiod stays bounded (LCM of the default menu is 400).
    """
    if n_graphs < 1:
        raise TaskGraphError(f"n_graphs must be >= 1, got {n_graphs}")
    if not (0 < utilization <= 1):
        raise TaskGraphError(
            f"utilization must be in (0, 1], got {utilization}"
        )
    rng = np.random.default_rng(seed)
    graphs = random_taskgraph_series(
        n_graphs,
        n_tasks_range=n_tasks_range,
        edge_prob=edge_prob,
        wcet_range=wcet_range,
        rng=rng,
    )
    menu = np.asarray(period_menu, dtype=float)
    if menu.size == 0 or np.any(menu <= 0):
        raise TaskGraphError(f"bad period menu {period_menu!r}")
    periods = [float(rng.choice(menu)) for _ in graphs]
    # repro: noqa[DET004] -- graphs/periods are generation-ordered
    # lists; the utilization sum order is pinned by the seed
    u_raw = sum(g.total_wcet / p for g, p in zip(graphs, periods))
    factor = utilization / u_raw
    periodic = [
        PeriodicTaskGraph(scale_wcets(g, factor), p)
        for g, p in zip(graphs, periods)
    ]
    return TaskGraphSet(periodic)

"""Estimators for a task's actual cycle demand (the pUBS ``X_k``).

§4.2: "X_k is the estimate of the amount of CPU cycles that task τ_k is
actually going to require. ... even if the estimate is wrong no
deadlines are violated.  However, the accuracy of the estimate
determines the optimality of the schedule. ... One can use various
techniques for accurate estimates of X_k, one of which is to keep
history of previous instances of each task."

Four estimators span the accuracy axis for the ablation benchmark:

* :class:`WorstCaseEstimator` — pessimal: ``X_k = wc_k`` (degenerates
  pUBS toward an arbitrary order, the paper's "bad estimate" regime);
* :class:`ScaledEstimator` — static fraction of the WCET (the right
  *prior* for the paper's uniform [20 %, 100 %] actuals is 60 %);
* :class:`HistoryEstimator` — the paper's suggestion: a moving average
  of each task's previous instances;
* :class:`OracleEstimator` — perfect knowledge (upper bound; reads the
  simulator's ground truth).
"""

from __future__ import annotations

import abc
from collections import defaultdict, deque
from typing import Deque, Dict, Tuple

from ..errors import SchedulingError
from ..sim.state import Candidate

__all__ = [
    "Estimator",
    "WorstCaseEstimator",
    "ScaledEstimator",
    "HistoryEstimator",
    "OracleEstimator",
]

_EPS = 1e-9


class Estimator(abc.ABC):
    """Estimates remaining actual cycles of a candidate task."""

    name: str = "estimator"

    @abc.abstractmethod
    def estimate(self, cand: Candidate) -> float:
        """Estimated *remaining* actual cycles of ``cand``.

        Implementations must return a value in
        ``[~0, cand.wc_remaining]`` — an estimate above the remaining
        worst case would be self-contradictory.
        """

    def observe(self, graph: str, node: str, wc: float, ac: float) -> None:
        """Told when a node completes with its revealed actual cycles."""

    @staticmethod
    def _clamp(value: float, cand: Candidate) -> float:
        return min(max(value, _EPS), max(cand.wc_remaining, _EPS))


class WorstCaseEstimator(Estimator):
    """Assume every task takes its full remaining worst case."""

    name = "worst-case"

    def estimate(self, cand: Candidate) -> float:
        return max(cand.wc_remaining, _EPS)


class ScaledEstimator(Estimator):
    """A fixed fraction of the full WCET, minus what already ran."""

    name = "scaled"

    def __init__(self, factor: float = 0.6) -> None:
        if not (0 < factor <= 1):
            raise SchedulingError(
                f"factor must be in (0, 1], got {factor!r}"
            )
        self.factor = float(factor)

    def estimate(self, cand: Candidate) -> float:
        return self._clamp(self.factor * cand.wc_full - cand.executed, cand)


class HistoryEstimator(Estimator):
    """Moving average over each task's recent actual cycle counts.

    Falls back to ``default_factor * wcet`` until the first observation
    arrives.  Keyed by ``(graph, node)``, so each task of each graph
    learns its own behaviour — the paper's "keep history of previous
    instances of each task".
    """

    name = "history"

    def __init__(self, window: int = 8, default_factor: float = 0.6) -> None:
        if window < 1:
            raise SchedulingError(f"window must be >= 1, got {window}")
        if not (0 < default_factor <= 1):
            raise SchedulingError(
                f"default_factor must be in (0, 1], got {default_factor!r}"
            )
        self.window = int(window)
        self.default_factor = float(default_factor)
        self._hist: Dict[Tuple[str, str], Deque[float]] = defaultdict(
            lambda: deque(maxlen=self.window)
        )

    def observe(self, graph: str, node: str, wc: float, ac: float) -> None:
        self._hist[(graph, node)].append(float(ac))

    def estimate(self, cand: Candidate) -> float:
        hist = self._hist.get((cand.graph_name, cand.node))
        if hist:
            # repro: noqa[DET004] -- history is appended in simulation
            # order, so the accumulation order is pinned by the trace
            total = sum(hist) / len(hist)
        else:
            total = self.default_factor * cand.wc_full
        return self._clamp(total - cand.executed, cand)


class OracleEstimator(Estimator):
    """Perfect estimates straight from the simulator's ground truth.

    Unrealizable in practice; bounds how much accurate estimation can
    buy (Table 1's pUBS is quoted "less than 1 % of optimal" *given*
    accurate estimates, which this estimator realizes).
    """

    name = "oracle"

    def estimate(self, cand: Candidate) -> float:
        return self._clamp(cand.actual_remaining, cand)

"""The feasibility check for out-of-EDF-order execution (Algorithm 2).

A candidate task belonging to the graph at EDF position k may run ahead
of the k−1 graphs with earlier absolute deadlines only if doing so —
at the current reference frequency, with everyone taking their worst
case — still lets each of those deadlines be met:

    for each j = 1 .. k−1 (graphs in EDF order):
        cum_WC_j + wc_candidate  <=  f_ref · (D_j − t)

where ``cum_WC_j`` is the cumulative remaining worst-case work of
graphs 1..j.  Executing a position-k task "can only jeopardize the
meeting of the deadlines of k−1 taskgraphs before it", hence exactly
k−1 conditions.  Using ``f_ref`` rather than f_max in the bound is what
preserves the locally non-increasing voltage assignment: a pick is
admitted only if it never forces a later speed-up above the current
reference frequency.

(The paper's pseudocode resets its ``sumWC`` accumulator inside the
loop, which would make every check independent of earlier graphs and
cannot guarantee the stated property; we implement the cumulative sum
its surrounding prose describes.)
"""

from __future__ import annotations

from ..sim.state import Candidate, SchedulerView

__all__ = ["feasibility_check"]

_ATOL = 1e-9


def feasibility_check(
    view: SchedulerView, cand: Candidate, s_ref: float
) -> bool:
    """True iff running ``cand`` now cannot break any earlier deadline.

    ``s_ref`` is the current reference speed (normalized f_ref).  A
    candidate from the most-imminent graph passes trivially (zero
    conditions).
    """
    if s_ref <= 0:
        return False
    t = view.time
    cum_wc = 0.0
    for job in view.active_jobs():
        if job is cand.job:
            # Reached the candidate's own position: k-1 checks done.
            return True
        cum_wc += job.remaining_wc()
        budget = s_ref * (job.abs_deadline - t)
        if cum_wc + cand.wc_remaining > budget + _ATOL:
            return False
    # Candidate's job not in the active list — nothing to jeopardize.
    return True

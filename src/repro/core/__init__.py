"""The paper's primary contribution: the Battery-Aware Scheduling core."""

from .estimator import (
    Estimator,
    HistoryEstimator,
    OracleEstimator,
    ScaledEstimator,
    WorstCaseEstimator,
)
from .feasibility import feasibility_check
from .methodology import Scheme, SchedulingPolicy, make_scheme, paper_schemes
from .oneshot import OneShotOracle, OneShotResult, evaluate_order, run_one_shot
from .priority import (
    LTF,
    PUBS,
    STF,
    PriorityFunction,
    RandomPriority,
    SpeedOracle,
)
from .ready_list import ALL_RELEASED, MOST_IMMINENT, ReadyListPolicy

__all__ = [
    "Estimator",
    "WorstCaseEstimator",
    "ScaledEstimator",
    "HistoryEstimator",
    "OracleEstimator",
    "PriorityFunction",
    "RandomPriority",
    "LTF",
    "STF",
    "PUBS",
    "SpeedOracle",
    "ReadyListPolicy",
    "MOST_IMMINENT",
    "ALL_RELEASED",
    "feasibility_check",
    "SchedulingPolicy",
    "Scheme",
    "make_scheme",
    "paper_schemes",
    "OneShotResult",
    "OneShotOracle",
    "run_one_shot",
    "evaluate_order",
]

"""Priority functions for choosing the next ready task (§4.2).

Given the ready list, a priority function ranks candidates; the
methodology executes the best-ranked candidate that passes the
feasibility check.  Implemented functions:

* :class:`RandomPriority` — the paper's baseline "picking up a task
  randomly every time from the ready list";
* :class:`LTF` / :class:`STF` — largest/shortest task first, the
  motivational heuristics of Figure 4 (LTF is also the Zhu et al.
  slack-reclamation heuristic the paper compares against in Table 1);
* :class:`PUBS` — Gruian's near-optimal priority

      p_ubs(o, τ_k) = X_k / (s_o² − s_{o,k}²)

  minimized over candidates, where ``s_o`` is the required speed after
  the executed partial order ``o`` and ``s_{o,k}`` the speed after
  appending τ_k with its *estimated* actual demand ``X_k``.  A task
  expected to finish far below its worst case drops the future speed a
  lot for few cycles spent — small ``p_ubs`` — and is scheduled first,
  maximizing slack recovery.

Speeds come from a :class:`SpeedOracle`, so the same PUBS code serves
both the one-shot common-deadline setting (Table 1) and the dynamic
periodic setting where ``s`` is whatever the active DVS algorithm would
set (Table 2).
"""

from __future__ import annotations

import abc
import math
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..errors import SchedulingError
from ..sim.state import Candidate
from .estimator import Estimator, WorstCaseEstimator

__all__ = [
    "SpeedOracle",
    "PriorityFunction",
    "RandomPriority",
    "LTF",
    "STF",
    "PUBS",
]

_EPS = 1e-12


class SpeedOracle(Protocol):
    """Answers the two speed queries pUBS needs."""

    def speed_now(self) -> float:
        """Required speed ``s_o`` for the current partial order."""
        ...

    def speed_after(self, cand: Candidate, estimate: float) -> float:
        """Required speed ``s_{o,k}`` after ``cand`` runs ``estimate``
        cycles and completes."""
        ...


class PriorityFunction(abc.ABC):
    """Ranks ready candidates; lower rank index = scheduled sooner."""

    name: str = "priority"

    @abc.abstractmethod
    def order(
        self, candidates: Sequence[Candidate], oracle: Optional[SpeedOracle]
    ) -> List[Candidate]:
        """Candidates sorted best-first.  Must be a permutation of the
        input; must not mutate anything."""


def _stable_key(cand: Candidate) -> Tuple[str, str]:
    return (cand.graph_name, cand.node)


class RandomPriority(PriorityFunction):
    """Uniformly random order (seeded and reproducible)."""

    name = "random"

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def order(
        self, candidates: Sequence[Candidate], oracle: Optional[SpeedOracle]
    ) -> List[Candidate]:
        cands = list(candidates)
        self._rng.shuffle(cands)
        return cands


class LTF(PriorityFunction):
    """Largest (remaining worst-case) task first."""

    name = "LTF"

    def order(
        self, candidates: Sequence[Candidate], oracle: Optional[SpeedOracle]
    ) -> List[Candidate]:
        return sorted(
            candidates, key=lambda c: (-c.wc_remaining,) + _stable_key(c)
        )


class STF(PriorityFunction):
    """Shortest (remaining worst-case) task first."""

    name = "STF"

    def order(
        self, candidates: Sequence[Candidate], oracle: Optional[SpeedOracle]
    ) -> List[Candidate]:
        return sorted(
            candidates, key=lambda c: (c.wc_remaining,) + _stable_key(c)
        )


class PUBS(PriorityFunction):
    """Gruian's near-optimal slack-recovery priority function.

    Parameters
    ----------
    estimator:
        Supplies ``X_k``.  Defaults to the worst-case estimator, which
        is safe but degenerate (every ``p_ubs`` is infinite); pass a
        history or oracle estimator to get the paper's behaviour.
    """

    name = "pUBS"

    def __init__(self, estimator: Optional[Estimator] = None) -> None:
        self.estimator = (
            estimator if estimator is not None else WorstCaseEstimator()
        )

    def score(self, cand: Candidate, oracle: SpeedOracle) -> float:
        """The raw ``p_ubs`` value (lower = run sooner)."""
        x_k = self.estimator.estimate(cand)
        s_o = oracle.speed_now()
        s_ok = oracle.speed_after(cand, x_k)
        denom = s_o * s_o - s_ok * s_ok
        if denom <= _EPS:
            # No recoverable slack from this task (estimate equals the
            # worst case, or the oracle is speed-insensitive): schedule
            # it as late as possible.
            return math.inf
        return x_k / denom

    def order(
        self, candidates: Sequence[Candidate], oracle: Optional[SpeedOracle]
    ) -> List[Candidate]:
        if oracle is None:
            raise SchedulingError("PUBS requires a speed oracle")
        scored = []
        for cand in candidates:
            p = self.score(cand, oracle)
            # Tie-break infinite scores by shortest estimated demand so
            # behaviour stays deterministic and sensible without slack.
            scored.append(
                (p, self.estimator.estimate(cand)) + _stable_key(cand)
            )
        ordered = sorted(range(len(candidates)), key=lambda i: scored[i])
        return [candidates[i] for i in ordered]

"""One-shot scheduling of a single task graph with a common deadline.

Table 1 and the Figure 4 motivational example live in this setting: m
interdependent tasks, one absolute deadline ``D``, tasks executed to
completion (no releases arrive, so nothing preempts).  The DVS rule is
the one-shot specialization every EDF-derived algorithm reduces to
here: before each task, run at the lowest speed that still fits the
*remaining worst case* into the remaining time,

    s = W_rem / (D - t),

which only ever decreases as actuals undercut worst cases (locally
non-increasing, guideline 1) and leaves no avoidable idle (guideline
2).  The priority function picks which ready task to run; the energy
difference between orders is pure slack-recovery quality, which is
exactly what Table 1 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

from ..errors import SchedulingError
from ..processor.platform import Processor
from ..sim.state import Candidate, JobState
from ..sim.trace import ExecutionTrace, TraceSegment
from ..taskgraph.graph import TaskGraph
from ..taskgraph.periodic import PeriodicTaskGraph
from .priority import PriorityFunction

__all__ = ["OneShotResult", "run_one_shot", "evaluate_order", "OneShotOracle"]

_EPS = 1e-12


@dataclass(frozen=True)
class OneShotResult:
    """Outcome of executing one graph against one deadline."""

    order: Tuple[str, ...]
    trace: ExecutionTrace
    energy: float
    charge: float
    finish_time: float
    deadline: float

    @property
    def feasible(self) -> bool:
        return self.finish_time <= self.deadline + 1e-9


class OneShotOracle:
    """Speed oracle for the common-deadline setting (Gruian's s_o, s_{o,k}).

    ``s_o = W_rem / (D - t)``; appending τ_k with estimated demand X_k
    gives ``s_{o,k} = (W_rem - wc_k) / (D - t - X_k / s_o)``.
    """

    def __init__(
        self, remaining_wc: float, deadline: float, time: float
    ) -> None:
        self.remaining_wc = remaining_wc
        self.deadline = deadline
        self.time = time

    def speed_now(self) -> float:
        span = self.deadline - self.time
        if span <= _EPS:
            return float("inf")
        return self.remaining_wc / span

    def speed_after(self, cand: Candidate, estimate: float) -> float:
        s_now = self.speed_now()
        if s_now <= _EPS or s_now == float("inf"):
            return s_now
        span = self.deadline - self.time - estimate / s_now
        rem = self.remaining_wc - cand.wc_remaining
        if span <= _EPS:
            return float("inf")
        return max(rem, 0.0) / span


def _make_job(
    graph: TaskGraph, deadline: float, actual: Mapping[str, float]
) -> JobState:
    ptg = PeriodicTaskGraph(graph, deadline)
    return JobState(ptg, 0, 0.0, actual)


def _execute_node(
    processor: Processor,
    trace: ExecutionTrace,
    t: float,
    job: JobState,
    node: str,
    s_req: float,
) -> float:
    """Run ``node`` to completion at (the realization of) ``s_req``.

    One-shot runs record the time-averaged mix current over the node's
    execution: total charge and energy are identical to the chunked
    realization (charge is linear in current), and Table 1/Figure 6
    measure energy only.  Returns the new time.
    """
    ac = job.remaining_ac_node(node)
    s_eff = processor.effective_speed(s_req)
    current = processor.current_at(s_req)
    mix = processor.resolve(s_req)
    dt = ac / s_eff
    trace.append(
        TraceSegment(
            start=t,
            duration=dt,
            graph=job.name,
            node=node,
            speed=s_eff,
            voltage=max(p.voltage for p in mix.points),
            current=current,
        )
    )
    job.advance_node(node, ac)
    return t + dt


def run_one_shot(
    graph: TaskGraph,
    deadline: float,
    processor: Processor,
    priority: PriorityFunction,
    actual: Mapping[str, float],
    *,
    start: float = 0.0,
) -> OneShotResult:
    """Execute ``graph`` once before ``deadline`` under ``priority``.

    ``actual`` maps node names to their actual cycle demands (must not
    exceed the WCETs).  Requires ``graph.total_wcet <= deadline - start``
    (otherwise even f_max cannot guarantee the worst case).
    """
    span = deadline - start
    if graph.total_wcet > span + 1e-9:
        raise SchedulingError(
            f"graph {graph.name!r}: worst case {graph.total_wcet:.6g} does "
            f"not fit in [start, deadline] span {span:.6g} even at f_max"
        )
    job = _make_job(graph, deadline - start, actual)
    trace = ExecutionTrace()
    t = start
    order: List[str] = []
    while not job.is_complete():
        remaining_wc = job.remaining_wc()
        oracle = OneShotOracle(remaining_wc, deadline, t)
        cands = [
            Candidate(
                job=job,
                node=n,
                wc_full=graph.wcet(n),
                wc_remaining=job.remaining_wc_node(n),
                executed=job.executed[n],
                actual_remaining=job.remaining_ac_node(n),
            )
            for n in job.ready_nodes()
        ]
        chosen = priority.order(cands, oracle)[0]
        s_req = oracle.speed_now()
        t = _execute_node(processor, trace, t, job, chosen.node, s_req)
        order.append(chosen.node)
    return OneShotResult(
        order=tuple(order),
        trace=trace,
        energy=trace.energy(processor.power.v_bat),
        charge=trace.charge(),
        finish_time=t,
        deadline=deadline,
    )


def evaluate_order(
    graph: TaskGraph,
    deadline: float,
    processor: Processor,
    order: Sequence[str],
    actual: Mapping[str, float],
    *,
    start: float = 0.0,
) -> OneShotResult:
    """Execute a *given* full order (must be a linear extension)."""
    if not graph.is_linear_extension(order):
        raise SchedulingError(
            f"order {list(order)!r} is not a linear extension of "
            f"{graph.name!r}"
        )
    job = _make_job(graph, deadline - start, actual)
    trace = ExecutionTrace()
    t = start
    for node in order:
        s_req = job.remaining_wc() / max(deadline - t, _EPS)
        t = _execute_node(processor, trace, t, job, node, s_req)
    return OneShotResult(
        order=tuple(order),
        trace=trace,
        energy=trace.energy(processor.power.v_bat),
        charge=trace.charge(),
        finish_time=t,
        deadline=deadline,
    )

"""The Battery-Aware Scheduling methodology (§4) and the paper's schemes.

A :class:`SchedulingPolicy` combines the three pluggable pieces the
paper identifies:

1. a DVS frequency setter (built separately, see :mod:`repro.dvs`);
2. a priority function over the ready list;
3. a ready-list policy, with the feasibility check guarding
   out-of-EDF-order picks.

:class:`Scheme` bundles a policy with a DVS-factory under a table-ready
name; :func:`paper_schemes` returns the five rows of Table 2 (EDF,
ccEDF, laEDF, BAS-1, BAS-2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..dvs import CcEDF, FrequencySetter, LaEDF, NoDVS
from ..errors import SchedulingError
from ..sim.state import Candidate, SchedulerView
from .estimator import Estimator, HistoryEstimator
from .feasibility import feasibility_check
from .priority import PUBS, PriorityFunction, RandomPriority, SpeedOracle
from .ready_list import ALL_RELEASED, MOST_IMMINENT, ReadyListPolicy

__all__ = ["SchedulingPolicy", "Scheme", "paper_schemes", "make_scheme"]


class SchedulingPolicy:
    """Priority function + ready-list policy (+ feasibility guard).

    Parameters
    ----------
    priority:
        Ranks the ready list.
    ready_list:
        Which tasks form the ready list.
    enforce_feasibility:
        Apply the Algorithm 2 check to out-of-EDF-order candidates.
        Defaults to the ready-list policy's requirement; disabling it on
        the all-released list is *unsafe* and exists only for the
        ablation that demonstrates why the check is needed.
    """

    def __init__(
        self,
        priority: PriorityFunction,
        ready_list: ReadyListPolicy = MOST_IMMINENT,
        *,
        enforce_feasibility: Optional[bool] = None,
    ) -> None:
        self.priority = priority
        self.ready_list = ready_list
        self.enforce_feasibility = (
            ready_list.needs_feasibility_check
            if enforce_feasibility is None
            else bool(enforce_feasibility)
        )

    # ------------------------------------------------------------------
    def select(
        self,
        view: SchedulerView,
        s_ref: float,
        oracle: Optional[SpeedOracle],
    ) -> Optional[Candidate]:
        """The task to run now, or None if nothing is ready.

        Candidates are scanned in priority order; with the feasibility
        guard on, the first candidate passing Algorithm 2 wins (a
        candidate of the most imminent graph always passes, so a choice
        always exists whenever work is pending).
        """
        candidates = self.ready_list.candidates(view)
        if not candidates:
            return None
        ordered = self.priority.order(candidates, oracle)
        if len(ordered) != len(candidates):
            raise SchedulingError(
                f"priority function {self.priority.name!r} dropped or "
                f"duplicated candidates"
            )
        if not self.enforce_feasibility:
            return ordered[0]
        for cand in ordered:
            if feasibility_check(view, cand, s_ref):
                return cand
        raise SchedulingError(
            "no feasible candidate found — the most-imminent graph's "
            "candidates must always pass; this indicates s_ref <= 0 "
            f"(got {s_ref!r}) with pending work"
        )

    # Estimator plumbing -------------------------------------------------
    def observe_completion(
        self, graph: str, node: str, wc: float, ac: float
    ) -> None:
        """Forward completion observations to an estimating priority."""
        estimator = getattr(self.priority, "estimator", None)
        if isinstance(estimator, Estimator):
            estimator.observe(graph, node, wc, ac)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SchedulingPolicy(priority={self.priority.name}, "
            f"ready_list={self.ready_list.name}, "
            f"feasibility={self.enforce_feasibility})"
        )


@dataclass(frozen=True)
class Scheme:
    """A named (DVS algorithm, scheduling policy) combination.

    Factories are stored (not instances) because both pieces carry
    per-run mutable state; :meth:`instantiate` yields fresh objects.
    """

    name: str
    dvs_factory: Callable[[], FrequencySetter]
    policy_factory: Callable[[], SchedulingPolicy]
    description: str = ""

    def instantiate(self) -> Tuple[FrequencySetter, SchedulingPolicy]:
        return self.dvs_factory(), self.policy_factory()


def make_scheme(
    name: str,
    *,
    dvs: Callable[[], FrequencySetter],
    priority: Callable[[], PriorityFunction],
    ready_list: ReadyListPolicy = MOST_IMMINENT,
    enforce_feasibility: Optional[bool] = None,
    description: str = "",
) -> Scheme:
    """Convenience constructor mirroring Table 2's scheme columns."""
    return Scheme(
        name=name,
        dvs_factory=dvs,
        policy_factory=lambda: SchedulingPolicy(
            priority(), ready_list, enforce_feasibility=enforce_feasibility
        ),
        description=description,
    )


def paper_schemes(
    *,
    estimator_factory: Callable[[], Estimator] = HistoryEstimator,
    random_seed: int = 0,
    baseline_granularity: str = "graph",
) -> List[Scheme]:
    """The five schemes of Table 2, in the paper's row order.

    ===========  =========  ===========  ============
    Scheme       DVS algo   Priority     Ready list
    ===========  =========  ===========  ============
    EDF          none       random       most imminent
    ccEDF        ccEDF      random       most imminent
    laEDF        laEDF      random       most imminent
    BAS-1        laEDF      pUBS         most imminent
    BAS-2        laEDF      pUBS         all released
    ===========  =========  ===========  ============

    The baseline ccEDF/laEDF rows reclaim slack at *graph* granularity
    (the task-level algorithms of Pillai & Shin handed whole graphs as
    monolithic EDF tasks — node completions invisible), while the BAS
    rows run the paper's Algorithm 1 machinery at *node* granularity.
    This is the reading of "extended to handle task graphs" that
    matches the paper's reported per-scheme currents; pass
    ``baseline_granularity="node"`` to give the baselines node-level
    reclamation too (an ablation, not the paper's table).
    """
    return [
        make_scheme(
            "EDF",
            dvs=NoDVS,
            priority=lambda: RandomPriority(random_seed),
            ready_list=MOST_IMMINENT,
            description="EDF without DVS, random intra-graph order",
        ),
        make_scheme(
            "ccEDF",
            dvs=lambda: CcEDF(granularity=baseline_granularity),
            priority=lambda: RandomPriority(random_seed),
            ready_list=MOST_IMMINENT,
            description="cycle-conserving EDF, random intra-graph order",
        ),
        make_scheme(
            "laEDF",
            dvs=lambda: LaEDF(granularity=baseline_granularity),
            priority=lambda: RandomPriority(random_seed),
            ready_list=MOST_IMMINENT,
            description="look-ahead EDF, random intra-graph order",
        ),
        make_scheme(
            "BAS-1",
            dvs=LaEDF,
            priority=lambda: PUBS(estimator_factory()),
            ready_list=MOST_IMMINENT,
            description="laEDF + pUBS over the most imminent graph",
        ),
        make_scheme(
            "BAS-2",
            dvs=LaEDF,
            priority=lambda: PUBS(estimator_factory()),
            ready_list=ALL_RELEASED,
            description="laEDF + pUBS over all released graphs "
            "(feasibility-checked)",
        ),
    ]

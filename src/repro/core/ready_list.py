"""Ready-list construction policies (§4.2).

Two policies from the paper:

* :data:`MOST_IMMINENT` — the ready list holds only the independent
  (precedence-satisfied) tasks of the released task graph with the
  earliest absolute deadline.  Plain EDF at graph granularity: always
  deadline-safe with zero checks, but limited slack-recovery choice.
  This is BAS-1's list.
* :data:`ALL_RELEASED` — the ready list holds the independent tasks of
  *every* released graph; out-of-EDF-order picks must pass the
  feasibility check (:mod:`repro.core.feasibility`).  This is BAS-2's
  list, "a more greedy approach".
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..sim.state import Candidate, SchedulerView

__all__ = ["ReadyListPolicy", "MOST_IMMINENT", "ALL_RELEASED"]


class ReadyListPolicy:
    """A named strategy that extracts candidates from the view."""

    def __init__(
        self,
        name: str,
        build: Callable[[SchedulerView], Tuple[Candidate, ...]],
        needs_feasibility_check: bool,
    ) -> None:
        self.name = name
        self._build = build
        #: Whether picks from this list can violate EDF order and hence
        #: must be guarded by the feasibility check.
        self.needs_feasibility_check = needs_feasibility_check

    def candidates(self, view: SchedulerView) -> Tuple[Candidate, ...]:
        return self._build(view)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReadyListPolicy({self.name!r})"


def _most_imminent(view: SchedulerView) -> Tuple[Candidate, ...]:
    jobs = view.active_jobs()
    if not jobs:
        return ()
    return view.candidates_of(jobs[0])


def _all_released(view: SchedulerView) -> Tuple[Candidate, ...]:
    out: List[Candidate] = []
    for job in view.active_jobs():
        out.extend(view.candidates_of(job))
    return tuple(out)


#: Ready tasks of the earliest-deadline released graph only (BAS-1).
MOST_IMMINENT = ReadyListPolicy("most-imminent", _most_imminent, False)

#: Ready tasks of all released graphs, feasibility-checked (BAS-2).
ALL_RELEASED = ReadyListPolicy("all-released", _all_released, True)

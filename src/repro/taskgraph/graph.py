"""Directed-acyclic task-graph model.

A :class:`TaskGraph` is the paper's unit of work: a DAG whose nodes are
tasks with worst-case computation requirements (in cycles) and whose
edges are precedence constraints.  All tasks in a graph share the
graph's deadline; the graph is released periodically (see
:mod:`repro.taskgraph.periodic`).

The model is deliberately minimal and immutable after construction:
runtime bookkeeping (remaining cycles, completion state) lives in the
simulator, not here, so one graph object can back many concurrent
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

import networkx as nx

from ..errors import TaskGraphError

__all__ = ["TaskNode", "TaskGraph"]


@dataclass(frozen=True)
class TaskNode:
    """One task (node) of a task graph.

    Parameters
    ----------
    name:
        Unique (within the graph) identifier.
    wcet:
        Worst-case computation in *cycles* at the maximum frequency.
        Must be strictly positive.
    """

    name: str
    wcet: float

    def __post_init__(self) -> None:
        if not self.name:
            raise TaskGraphError("task node needs a non-empty name")
        if not (self.wcet > 0):
            raise TaskGraphError(
                f"task {self.name!r}: wcet must be > 0, got {self.wcet!r}"
            )


class TaskGraph:
    """Immutable DAG of :class:`TaskNode` objects with precedence edges.

    Parameters
    ----------
    name:
        Identifier used in traces and error messages.
    nodes:
        The tasks.  Names must be unique.
    edges:
        ``(pred, succ)`` pairs of node *names*; ``pred`` must complete
        before ``succ`` may start.

    Raises
    ------
    TaskGraphError
        If names collide, an edge references an unknown node, or the
        edges contain a cycle.
    """

    def __init__(
        self,
        name: str,
        nodes: Sequence[TaskNode],
        edges: Iterable[Tuple[str, str]] = (),
    ) -> None:
        if not name:
            raise TaskGraphError("task graph needs a non-empty name")
        self._name = name
        self._nodes: Dict[str, TaskNode] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise TaskGraphError(
                    f"graph {name!r}: duplicate task name {node.name!r}"
                )
            self._nodes[node.name] = node
        if not self._nodes:
            raise TaskGraphError(f"graph {name!r}: needs at least one task")

        g = nx.DiGraph()
        g.add_nodes_from(self._nodes)
        for pred, succ in edges:
            for endpoint in (pred, succ):
                if endpoint not in self._nodes:
                    raise TaskGraphError(
                        f"graph {name!r}: edge references unknown task "
                        f"{endpoint!r}"
                    )
            if pred == succ:
                raise TaskGraphError(
                    f"graph {name!r}: self-loop on task {pred!r}"
                )
            g.add_edge(pred, succ)
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise TaskGraphError(
                f"graph {name!r}: precedence edges contain a cycle {cycle}"
            )
        self._graph = g
        # Frozen views computed once; the graph is immutable afterwards.
        self._topo_order: Tuple[str, ...] = tuple(nx.topological_sort(g))
        # repro: noqa[DET004] -- _nodes preserves construction order
        # (validated topologically); WCET sum order is fixed
        self._total_wcet = float(
            sum(n.wcet for n in self._nodes.values())
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def total_wcet(self) -> float:
        """Sum of worst-case cycles over all tasks (the paper's ``WCi``)."""
        return self._total_wcet

    @property
    def node_names(self) -> Tuple[str, ...]:
        return self._topo_order

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[TaskNode]:
        for name in self._topo_order:
            yield self._nodes[name]

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def node(self, name: str) -> TaskNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise TaskGraphError(
                f"graph {self._name!r}: no task named {name!r}"
            ) from None

    def wcet(self, name: str) -> float:
        return self.node(name).wcet

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def predecessors(self, name: str) -> Tuple[str, ...]:
        self.node(name)
        return tuple(self._graph.predecessors(name))

    def successors(self, name: str) -> Tuple[str, ...]:
        self.node(name)
        return tuple(self._graph.successors(name))

    def edges(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(self._graph.edges())

    def sources(self) -> Tuple[str, ...]:
        """Tasks with no predecessors (initially ready)."""
        return tuple(
            n for n in self._topo_order if self._graph.in_degree(n) == 0
        )

    def sinks(self) -> Tuple[str, ...]:
        return tuple(
            n for n in self._topo_order if self._graph.out_degree(n) == 0
        )

    def topological_order(self) -> Tuple[str, ...]:
        """One fixed topological order of the task names."""
        return self._topo_order

    def ready_after(self, completed: Set[str]) -> Tuple[str, ...]:
        """Names of tasks whose predecessors are all in ``completed``.

        Tasks already in ``completed`` are excluded.  This is the pure
        (stateless) ready-set computation used by the simulator and by
        the exhaustive search.
        """
        out: List[str] = []
        for name in self._topo_order:
            if name in completed:
                continue
            if all(p in completed for p in self._graph.predecessors(name)):
                out.append(name)
        return tuple(out)

    def is_linear_extension(self, order: Sequence[str]) -> bool:
        """``True`` iff ``order`` is a full schedule respecting precedence."""
        if sorted(order) != sorted(self._nodes):
            return False
        position = {name: i for i, name in enumerate(order)}
        return all(position[u] < position[v] for u, v in self._graph.edges())

    def critical_path_wcet(self) -> float:
        """WCET sum along the longest (cycle-weighted) path."""
        dist: Dict[str, float] = {}
        for name in self._topo_order:
            preds = self.predecessors(name)
            base = max((dist[p] for p in preds), default=0.0)
            dist[name] = base + self._nodes[name].wcet
        return max(dist.values())

    def as_networkx(self) -> nx.DiGraph:
        """A *copy* of the underlying directed graph (node attr ``wcet``)."""
        g = self._graph.copy()
        for name, node in self._nodes.items():
            g.nodes[name]["wcet"] = node.wcet
        return g

    # ------------------------------------------------------------------
    def relabeled(self, name: str) -> "TaskGraph":
        """A copy of this graph under a new name (shares node objects)."""
        return TaskGraph(name, list(self._nodes.values()), self.edges())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskGraph({self._name!r}, tasks={len(self)}, "
            f"edges={self._graph.number_of_edges()}, "
            f"total_wcet={self._total_wcet:.6g})"
        )

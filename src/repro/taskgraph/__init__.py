"""Task-graph substrate: DAG model, periodic sets, random generation."""

from .graph import TaskGraph, TaskNode
from .periodic import PeriodicTaskGraph, TaskGraphSet
from .tgff import (
    chain,
    fork_join,
    independent_tasks,
    layered_dag,
    random_dag,
    random_taskgraph_series,
)

__all__ = [
    "TaskGraph",
    "TaskNode",
    "PeriodicTaskGraph",
    "TaskGraphSet",
    "random_dag",
    "layered_dag",
    "chain",
    "fork_join",
    "independent_tasks",
    "random_taskgraph_series",
]

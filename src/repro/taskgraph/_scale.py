"""WCET scaling helper shared by workload generators."""

from __future__ import annotations

from ..errors import TaskGraphError
from .graph import TaskGraph, TaskNode

__all__ = ["scale_wcets"]


def scale_wcets(graph: TaskGraph, factor: float) -> TaskGraph:
    """A copy of ``graph`` with every node's WCET multiplied by ``factor``.

    Used to hit a target utilization while keeping periods on a
    harmonic-friendly menu (bounded hyperperiods); structure and the
    *relative* task sizes are untouched.
    """
    if not (factor > 0):
        raise TaskGraphError(f"factor must be > 0, got {factor}")
    nodes = [TaskNode(n.name, n.wcet * factor) for n in graph]
    return TaskGraph(graph.name, nodes, graph.edges())

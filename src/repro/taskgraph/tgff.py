"""TGFF-style random task-graph generation.

The paper generates its workload with Princeton's TGFF ("Task Graphs
For Free") tool: DAGs "with random dependencies" whose node WCETs are
drawn from a uniform distribution.  TGFF itself is a C program we do
not have; this module is the substitution documented in DESIGN.md §5 —
a seeded generator family producing connected random DAGs with bounded
fan-in/fan-out, plus a few structured families (chains, fork–join,
layered) useful for tests and ablations.

All generators take a :class:`numpy.random.Generator` (or a seed) so
every experiment in the repository is exactly reproducible.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from ..errors import TaskGraphError
from .graph import TaskGraph, TaskNode

__all__ = [
    "random_dag",
    "layered_dag",
    "chain",
    "fork_join",
    "independent_tasks",
    "random_taskgraph_series",
]

RngLike = Union[int, np.random.Generator, None]


def _rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _uniform_wcets(
    rng: np.random.Generator, n: int, wcet_range: Tuple[float, float]
) -> np.ndarray:
    lo, hi = wcet_range
    if not (0 < lo <= hi):
        raise TaskGraphError(
            f"wcet_range must satisfy 0 < lo <= hi, got {wcet_range!r}"
        )
    return rng.uniform(lo, hi, size=n)


def random_dag(
    n_tasks: int,
    *,
    name: str = "tg",
    edge_prob: float = 0.3,
    max_in_degree: int = 3,
    max_out_degree: int = 3,
    wcet_range: Tuple[float, float] = (1.0, 10.0),
    rng: RngLike = None,
) -> TaskGraph:
    """Generate a connected random DAG in TGFF's spirit.

    Nodes are labelled ``t0..t{n-1}`` in topological order; an edge
    ``ti -> tj`` (i < j) is inserted with probability ``edge_prob``
    subject to the degree bounds.  Afterwards every node other than
    ``t0`` that ends up with no predecessor is attached to a random
    earlier node, which keeps the DAG weakly connected the way TGFF's
    series-parallel expansions do.

    Parameters mirror the paper's workload: uniform WCETs, random
    dependencies, 5-15 tasks in the evaluation.
    """
    if n_tasks < 1:
        raise TaskGraphError(f"n_tasks must be >= 1, got {n_tasks}")
    if not (0 <= edge_prob <= 1):
        raise TaskGraphError(f"edge_prob must be in [0,1], got {edge_prob}")
    if max_in_degree < 1 or max_out_degree < 1:
        raise TaskGraphError("degree bounds must be >= 1")
    gen = _rng(rng)
    wcets = _uniform_wcets(gen, n_tasks, wcet_range)
    nodes = [TaskNode(f"t{i}", float(wcets[i])) for i in range(n_tasks)]

    in_deg = [0] * n_tasks
    out_deg = [0] * n_tasks
    edges: List[Tuple[str, str]] = []
    for j in range(1, n_tasks):
        for i in range(j):
            if in_deg[j] >= max_in_degree:
                break
            if out_deg[i] >= max_out_degree:
                continue
            if gen.random() < edge_prob:
                edges.append((f"t{i}", f"t{j}"))
                in_deg[j] += 1
                out_deg[i] += 1
    # Connect orphan nodes to keep the graph weakly connected.
    # Connectivity takes precedence over the out-degree bound: when all
    # earlier nodes are saturated the least-loaded one is used anyway
    # (the in-degree bound is always strict).
    for j in range(1, n_tasks):
        if in_deg[j] == 0:
            candidates = [i for i in range(j) if out_deg[i] < max_out_degree]
            if candidates:
                i = int(gen.choice(candidates))
            else:
                i = min(range(j), key=lambda k: out_deg[k])
            edges.append((f"t{i}", f"t{j}"))
            in_deg[j] += 1
            out_deg[i] += 1
    return TaskGraph(name, nodes, edges)


def layered_dag(
    layers: Sequence[int],
    *,
    name: str = "tg",
    inter_layer_prob: float = 0.5,
    wcet_range: Tuple[float, float] = (1.0, 10.0),
    rng: RngLike = None,
) -> TaskGraph:
    """A DAG organized in layers; edges go only to the next layer.

    Every node in layer k+1 receives at least one edge from layer k, so
    the precedence depth equals ``len(layers)``.  Useful for ablations
    that separate "wide" from "deep" graphs.
    """
    if not layers or any(w < 1 for w in layers):
        raise TaskGraphError(f"layers must be positive widths, got {layers!r}")
    gen = _rng(rng)
    # repro: noqa[DET004] -- integer layer widths; the sum is exact
    # regardless of order
    n = sum(layers)
    wcets = _uniform_wcets(gen, n, wcet_range)
    nodes = [TaskNode(f"t{i}", float(wcets[i])) for i in range(n)]
    # Node index ranges per layer.
    starts = np.concatenate([[0], np.cumsum(layers)])
    edges: List[Tuple[str, str]] = []
    for k in range(len(layers) - 1):
        prev = range(int(starts[k]), int(starts[k + 1]))
        cur = range(int(starts[k + 1]), int(starts[k + 2]))
        for j in cur:
            preds = [i for i in prev if gen.random() < inter_layer_prob]
            if not preds:
                preds = [int(gen.choice(list(prev)))]
            edges.extend((f"t{i}", f"t{j}") for i in preds)
    return TaskGraph(name, nodes, edges)


def chain(
    n_tasks: int,
    *,
    name: str = "tg",
    wcet_range: Tuple[float, float] = (1.0, 10.0),
    rng: RngLike = None,
) -> TaskGraph:
    """A fully serial graph t0 -> t1 -> ... (worst case for ordering
    freedom)."""
    if n_tasks < 1:
        raise TaskGraphError(f"n_tasks must be >= 1, got {n_tasks}")
    gen = _rng(rng)
    wcets = _uniform_wcets(gen, n_tasks, wcet_range)
    nodes = [TaskNode(f"t{i}", float(wcets[i])) for i in range(n_tasks)]
    edges = [(f"t{i}", f"t{i+1}") for i in range(n_tasks - 1)]
    return TaskGraph(name, nodes, edges)


def fork_join(
    n_branches: int,
    *,
    name: str = "tg",
    wcet_range: Tuple[float, float] = (1.0, 10.0),
    rng: RngLike = None,
) -> TaskGraph:
    """Source -> n parallel branches -> sink (maximal ordering freedom)."""
    if n_branches < 1:
        raise TaskGraphError(f"n_branches must be >= 1, got {n_branches}")
    gen = _rng(rng)
    n = n_branches + 2
    wcets = _uniform_wcets(gen, n, wcet_range)
    nodes = [TaskNode("src", float(wcets[0]))]
    nodes += [
        TaskNode(f"b{i}", float(wcets[i + 1])) for i in range(n_branches)
    ]
    nodes.append(TaskNode("sink", float(wcets[-1])))
    edges = [("src", f"b{i}") for i in range(n_branches)]
    edges += [(f"b{i}", "sink") for i in range(n_branches)]
    return TaskGraph(name, nodes, edges)


def independent_tasks(
    wcets: Sequence[float], *, name: str = "tg"
) -> TaskGraph:
    """A graph with no edges (the reduced problem of §4.2 / Gruian's UBS)."""
    nodes = [TaskNode(f"t{i}", float(w)) for i, w in enumerate(wcets)]
    return TaskGraph(name, nodes, [])


def random_taskgraph_series(
    count: int,
    *,
    n_tasks_range: Tuple[int, int] = (5, 15),
    edge_prob: float = 0.3,
    wcet_range: Tuple[float, float] = (1.0, 10.0),
    name_prefix: str = "tg",
    rng: RngLike = None,
) -> List[TaskGraph]:
    """A list of random DAGs with node counts uniform in ``n_tasks_range``.

    This is the paper's evaluation workload shape: "taskgraphs with
    nodes varying from 5 to 15".
    """
    if count < 1:
        raise TaskGraphError(f"count must be >= 1, got {count}")
    lo, hi = n_tasks_range
    if not (1 <= lo <= hi):
        raise TaskGraphError(f"bad n_tasks_range {n_tasks_range!r}")
    gen = _rng(rng)
    out = []
    for i in range(count):
        n = int(gen.integers(lo, hi + 1))
        out.append(
            random_dag(
                n,
                name=f"{name_prefix}{i}",
                edge_prob=edge_prob,
                wcet_range=wcet_range,
                rng=gen,
            )
        )
    return out

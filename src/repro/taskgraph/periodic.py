"""Periodic task-graph sets.

The paper schedules *periodically arriving* task graphs whose deadlines
equal their periods, on one processor.  A :class:`PeriodicTaskGraph`
binds a :class:`~repro.taskgraph.graph.TaskGraph` to a period; a
:class:`TaskGraphSet` is the schedulable collection with utilization
accounting and scaling (the paper keeps system utilization at 70 %).

Utilization here is defined exactly as in ccEDF for task graphs
(§4.1): ``U = Σ_i WC_i / D_i`` where ``WC_i`` is the summed worst-case
cycle count of graph *i*, expressed in units of the maximum frequency
(cycles are stored at f_max; dividing by seconds yields a fraction of
f_max when f_max is normalized to 1 cycle per time unit — see
:mod:`repro.processor`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce
from typing import Iterable, Iterator, Sequence, Tuple

from ..errors import TaskGraphError
from .graph import TaskGraph

__all__ = ["PeriodicTaskGraph", "TaskGraphSet"]


@dataclass(frozen=True)
class PeriodicTaskGraph:
    """A task graph released every ``period`` time units.

    The relative deadline equals the period (the paper's assumption).
    ``phase`` allows a first release later than t=0 (the paper uses
    synchronous release, phase 0, which is also the default).
    """

    graph: TaskGraph
    period: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not (self.period > 0):
            raise TaskGraphError(
                f"graph {self.graph.name!r}: period must be > 0, got "
                f"{self.period!r}"
            )
        if self.phase < 0:
            raise TaskGraphError(
                f"graph {self.graph.name!r}: phase must be >= 0, got "
                f"{self.phase!r}"
            )

    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def deadline(self) -> float:
        """Relative deadline (= period)."""
        return self.period

    @property
    def utilization(self) -> float:
        """``WC_i / D_i`` with cycles measured at normalized f_max = 1."""
        return self.graph.total_wcet / self.period

    def release_time(self, job_index: int) -> float:
        """Absolute release instant of the ``job_index``-th job (0-based)."""
        if job_index < 0:
            raise TaskGraphError("job_index must be >= 0")
        return self.phase + job_index * self.period

    def absolute_deadline(self, job_index: int) -> float:
        return self.release_time(job_index) + self.period

    def with_period(self, period: float) -> "PeriodicTaskGraph":
        return PeriodicTaskGraph(self.graph, period, self.phase)


def _float_lcm(values: Sequence[float], resolution: float = 1e-9) -> float:
    """LCM of positive floats on a fixed grid (for hyperperiod computation)."""
    ints = []
    for v in values:
        n = round(v / resolution)
        if n <= 0 or abs(n * resolution - v) > resolution:
            # Periods not representable on the grid: fall back to product.
            return math.prod(values) if hasattr(math, "prod") else reduce(
                lambda a, b: a * b, values, 1.0
            )
        ints.append(n)
    lcm = reduce(lambda a, b: a * b // math.gcd(a, b), ints, 1)
    return lcm * resolution


class TaskGraphSet:
    """An ordered collection of periodic task graphs sharing one processor."""

    def __init__(self, graphs: Iterable[PeriodicTaskGraph]) -> None:
        self._graphs: Tuple[PeriodicTaskGraph, ...] = tuple(graphs)
        if not self._graphs:
            raise TaskGraphError("task graph set must not be empty")
        names = [g.name for g in self._graphs]
        if len(set(names)) != len(names):
            raise TaskGraphError(f"duplicate task graph names in set: {names}")

    def __len__(self) -> int:
        return len(self._graphs)

    def __iter__(self) -> Iterator[PeriodicTaskGraph]:
        return iter(self._graphs)

    def __getitem__(self, i: int) -> PeriodicTaskGraph:
        return self._graphs[i]

    def by_name(self, name: str) -> PeriodicTaskGraph:
        for g in self._graphs:
            if g.name == name:
                return g
        raise TaskGraphError(f"no task graph named {name!r} in set")

    @property
    def utilization(self) -> float:
        """Total worst-case utilization ``Σ WC_i / D_i`` (f_max = 1)."""
        # repro: noqa[DET004] -- _graphs is the tuple passed at set
        # construction; term order is fixed
        return sum(g.utilization for g in self._graphs)

    def hyperperiod(self) -> float:
        """Least common multiple of the periods (phase-0 repeat interval)."""
        return _float_lcm([g.period for g in self._graphs])

    def total_tasks(self) -> int:
        return sum(len(g.graph) for g in self._graphs)

    # ------------------------------------------------------------------
    def scaled_to_utilization(self, target: float) -> "TaskGraphSet":
        """Uniformly rescale periods so worst-case utilization == target.

        The paper keeps utilization at 70 %; generators produce graphs
        with arbitrary WCETs and this method normalizes the set.  WCETs
        are untouched — only periods move — so graph *structure* and the
        relative sizes of tasks are preserved.
        """
        if not (0 < target <= 1):
            raise TaskGraphError(
                f"target utilization must be in (0, 1], got {target!r}"
            )
        current = self.utilization
        factor = current / target
        return TaskGraphSet(
            PeriodicTaskGraph(g.graph, g.period * factor, g.phase * factor)
            for g in self._graphs
        )

    def scaled_wcets_to_utilization(self, target: float) -> "TaskGraphSet":
        """Uniformly rescale *WCETs* so worst-case utilization == target.

        Unlike :meth:`scaled_to_utilization`, periods are untouched, so
        a harmonic period structure (and with it a bounded hyperperiod)
        survives the rescale — the right knob when periods carry
        real-world meaning (frame rates, polling intervals).
        """
        from ._scale import scale_wcets

        if not (0 < target <= 1):
            raise TaskGraphError(
                f"target utilization must be in (0, 1], got {target!r}"
            )
        factor = target / self.utilization
        return TaskGraphSet(
            PeriodicTaskGraph(scale_wcets(g.graph, factor), g.period, g.phase)
            for g in self._graphs
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskGraphSet(n={len(self)}, tasks={self.total_tasks()}, "
            f"U={self.utilization:.3f})"
        )

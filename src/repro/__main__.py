"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro table2 --sets 10 --workers 4
    python -m repro table1 --sizes 5 10 15
    python -m repro fig5
    python -m repro campaign --scenarios 20 --workers 4
    python -m repro all            # everything, default scales

Each subcommand prints the same rows/series the paper reports; scales
default to quick settings (see EXPERIMENTS.md for paper-scale flags).
Sweep-shaped subcommands accept ``--workers N`` to spread their
scenarios over a multiprocessing pool — results are bit-identical to
sequential runs.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import experiments as ex
from .analysis.tables import format_table
from .campaign import (
    CampaignRunner,
    ResultCache,
    ScenarioSpec,
    StreamingAggregator,
    spawn_seeds,
)


def _cmd_table1(args) -> str:
    return ex.table1(
        sizes=tuple(args.sizes),
        graphs_per_size=args.graphs_per_size,
        seed=args.seed,
        workers=args.workers,
    ).format()


def _cmd_table2(args) -> str:
    return ex.table2(
        n_sets=args.sets,
        n_graphs=args.graphs,
        seed=args.seed,
        workers=args.workers,
    ).format()


def _cmd_fig4(args) -> str:
    return ex.fig4().format()


def _cmd_fig5(args) -> str:
    return ex.fig5().format()


def _cmd_fig6(args) -> str:
    return ex.fig6(
        graph_counts=tuple(args.counts),
        sets_per_point=args.sets,
        seed=args.seed,
        utilization=args.utilization,
        workers=args.workers,
    ).format()


def _cmd_ratecapacity(args) -> str:
    return ex.rate_capacity().format()


def _cmd_coherence(args) -> str:
    return ex.model_coherence().format()


def _cmd_ablations(args) -> str:
    parts = [
        ex.ablation_estimator(seed=args.seed, workers=args.workers).format(),
        ex.ablation_freqset(seed=args.seed, workers=args.workers).format(),
        ex.ablation_dvs(seed=args.seed, workers=args.workers).format(),
        ex.ablation_feasibility(
            seed=args.seed, workers=args.workers
        ).format(),
    ]
    return "\n\n".join(parts)


def _cmd_campaign(args) -> str:
    """Run a seeded scenario campaign and print per-scheme aggregates.

    Spawns ``--scenarios`` independent child seeds from ``--seed`` via
    ``numpy.random.SeedSequence`` and runs every ``--schemes`` entry on
    each seeded workload (one hyperperiod, battery-evaluated), across
    ``--workers`` processes.  Results are cached on disk keyed by spec
    content hash (``--cache-dir``, default
    ``~/.cache/repro/campaign``; disable with ``--no-cache``), so
    re-running an unchanged campaign is free.  Aggregates are
    bit-identical for any worker count.
    """
    if args.scenarios < 1:
        raise SystemExit("error: --scenarios must be >= 1")
    if not args.schemes:
        raise SystemExit("error: --schemes must name at least one scheme")
    seeds = spawn_seeds(args.seed, args.scenarios)
    specs = [
        ScenarioSpec(
            scheme=scheme,
            n_graphs=args.graphs,
            utilization=args.utilization,
            seed=s,
            battery=args.battery,
            # Record misses instead of aborting the campaign: the
            # look-ahead schemes can legitimately overcommit near
            # worst-case actuals, and the misses column should say so.
            on_miss="record",
        )
        for s in seeds
        for scheme in args.schemes
    ]
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = CampaignRunner(args.workers, cache=cache)
    agg = StreamingAggregator(
        percentiles=(50.0,), group_by=lambda r: r.spec.scheme
    )
    campaign = runner.run(specs, aggregators=[agg])
    stats = agg.summary()
    rows = []
    for scheme in args.schemes:
        st = stats[scheme]
        life = st["lifetime_min"]
        rows.append(
            [
                scheme,
                life.mean,
                life.minimum,
                life.maximum,
                life.percentiles[50.0],
                st["delivered_mah"].mean,
                st["misses"].mean,
            ]
        )
    table = format_table(
        ["Scheme", "Life mean", "min", "max", "p50", "mAh mean", "misses"],
        rows,
        title=(
            f"Campaign — {args.scenarios} scenarios x "
            f"{len(args.schemes)} schemes (root seed {args.seed})"
        ),
        precision=1,
    )
    footer = (
        f"{len(specs)} scenarios, {campaign.n_workers} worker(s), "
        f"{campaign.wall_time_s:.2f}s wall, {campaign.cache_hits} cache "
        f"hit(s)"
    )
    return table + "\n" + footer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the tables and figures of 'Battery Aware Dynamic "
            "Scheduling for Periodic Task Graphs' (Rao et al., 2006)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="energy vs exhaustive optimal")
    p.add_argument("--sizes", type=int, nargs="+", default=list(range(5, 16)))
    p.add_argument("--graphs-per-size", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("table2", help="charge delivered + battery lifetime")
    p.add_argument("--sets", type=int, default=5)
    p.add_argument("--graphs", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser("fig4", help="LTF vs STF motivational example")
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("fig5", help="EDF vs pUBS+feasibility traces")
    p.set_defaults(fn=_cmd_fig5)

    p = sub.add_parser("fig6", help="ordering schemes vs near-optimal")
    p.add_argument("--counts", type=int, nargs="+", default=[2, 3, 4, 5, 6])
    p.add_argument("--sets", type=int, default=2)
    p.add_argument("--utilization", type=float, default=0.85)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(fn=_cmd_fig6)

    p = sub.add_parser("ratecapacity", help="load vs delivered capacity")
    p.set_defaults(fn=_cmd_ratecapacity)

    p = sub.add_parser("coherence", help="battery model agreement (Figs 2-3)")
    p.set_defaults(fn=_cmd_coherence)

    p = sub.add_parser("ablations", help="all four design-choice ablations")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(fn=_cmd_ablations)

    p = sub.add_parser(
        "campaign",
        help="seeded scenario campaign (parallel, cached, deterministic)",
        description=_cmd_campaign.__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "--scenarios", type=int, default=10,
        help="number of independent seeded workloads",
    )
    p.add_argument("--graphs", type=int, default=4)
    p.add_argument("--utilization", type=float, default=0.7)
    p.add_argument(
        "--schemes", nargs="+",
        default=["EDF", "ccEDF", "laEDF", "BAS-1", "BAS-2"],
        help="campaign-registry scheme names to run per scenario",
    )
    p.add_argument("--battery", default="stochastic")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default ~/.cache/repro/campaign "
        "or $REPRO_CAMPAIGN_CACHE)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p.set_defaults(fn=_cmd_campaign)

    p = sub.add_parser("all", help="every table and figure, quick scales")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=None)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "all":
        order = [
            ("table1", _cmd_table1),
            ("table2", _cmd_table2),
            ("fig4", _cmd_fig4),
            ("fig5", _cmd_fig5),
            ("fig6", _cmd_fig6),
            ("ratecapacity", _cmd_ratecapacity),
            ("coherence", _cmd_coherence),
        ]
        for name, fn in order:
            sub_args = build_parser().parse_args(
                [name] if name not in ("table1", "table2", "fig6")
                else [name, "--seed", str(args.seed)]
            )
            print(fn(sub_args))
            print()
        return 0
    print(args.fn(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro table2 --sets 10 --workers 4
    python -m repro table1 --sizes 5 10 15
    python -m repro fig5
    python -m repro study run table2 --arg n_sets=10 --workers 4
    python -m repro study run plan.json --format csv
    python -m repro study axes
    python -m repro campaign --scenarios 20 --workers 4
    python -m repro campaign --backend dist --dist-dir /shared/q \
        --spawn-workers 4
    python -m repro campaign-worker --dir /shared/q
    python -m repro check src --fix-hints
    python -m repro all            # everything, default scales

Each subcommand prints the same rows/series the paper reports; scales
default to quick settings (see EXPERIMENTS.md for paper-scale flags).
Sweep-shaped subcommands accept ``--workers N`` to spread their
scenarios over a multiprocessing pool — results are bit-identical to
sequential runs.  ``campaign --backend dist`` runs the same sweep as
the broker of a distributed fleet (workers join via
``campaign-worker``), still bit-identical.  ``study`` runs
declarative :mod:`repro.api` plans — builtin (``study plans``) or
from a JSON plan file (``study export`` writes one).
"""

from __future__ import annotations

import argparse
import json
import sys

from . import faults
from .analysis import experiments as ex
from .analysis.tables import format_table
from .api import plans as study_plans
from .campaign import (
    CampaignRunner,
    ResultCache,
    ScenarioSpec,
    StreamingAggregator,
    install_env_plugins,
    known_schemes,
    spawn_seeds,
)
from .campaign.distributed import (
    DistributedRunner,
    run_directory_worker,
    run_tcp_worker,
)


def _cmd_table1(args) -> str:
    return _run_plan_cmd(
        args,
        study_plans.table1_plan,
        sizes=tuple(args.sizes),
        graphs_per_size=args.graphs_per_size,
        seed=args.seed,
    )


def _driver_runner(args, cache=None):
    """A distributed runner for a sweep driver, or ``None`` for local.

    Lets ``table2``/``fig6``/``study run`` run on a worker fleet
    (``--backend dist --dist-dir DIR [--spawn-workers K]``) — the
    nightly paper-scale CI job byte-diffs their output against the
    local backend.  ``cache`` is consulted/filled broker-side.
    """
    if getattr(args, "backend", "local") == "local":
        return None
    if args.dist_dir is None:
        raise SystemExit("error: --backend dist needs --dist-dir")
    if args.spawn_workers == 0 and args.result_timeout is None:
        print(
            "note: no --spawn-workers and no --result-timeout; the "
            "broker will wait indefinitely for external workers to "
            "attach",
            file=sys.stderr,
        )
    return DistributedRunner(
        workdir=args.dist_dir,
        cache=cache,
        n_local_workers=args.spawn_workers,
        result_timeout=args.result_timeout,
        max_retries=getattr(args, "max_retries", 0),
        on_error=getattr(args, "on_error", "raise"),
        spec_timeout=getattr(args, "spec_timeout", None),
    )


def _run_plan_cmd(args, builder, **kwargs) -> str:
    """Run a builtin study plan for a classic subcommand.

    The plan's renderer reproduces the historical driver output
    byte-for-byte; routing the CLI straight through the plan avoids
    the deprecated shims (and their warnings, which CLI users could
    do nothing about).
    """
    runner = _driver_runner(args)
    try:
        result = builder(**kwargs).run(
            runner=runner, workers=getattr(args, "workers", 1)
        )
        return result.format()
    finally:
        if runner is not None:
            runner.close()


def _cmd_table2(args) -> str:
    return _run_plan_cmd(
        args,
        study_plans.table2_plan,
        n_sets=args.sets,
        n_graphs=args.graphs,
        seed=args.seed,
    )


def _cmd_fig4(args) -> str:
    return ex.fig4().format()


def _cmd_fig5(args) -> str:
    return ex.fig5().format()


def _cmd_fig6(args) -> str:
    return _run_plan_cmd(
        args,
        study_plans.fig6_plan,
        graph_counts=tuple(args.counts),
        sets_per_point=args.sets,
        seed=args.seed,
        utilization=args.utilization,
    )


def _cmd_ratecapacity(args) -> str:
    return _run_plan_cmd(args, study_plans.rate_capacity_plan)


def _cmd_coherence(args) -> str:
    return _run_plan_cmd(args, study_plans.model_coherence_plan)


def _cmd_ablations(args) -> str:
    builders = (
        study_plans.ablation_estimator_plan,
        study_plans.ablation_freqset_plan,
        study_plans.ablation_dvs_plan,
        study_plans.ablation_feasibility_plan,
    )
    return "\n\n".join(
        _run_plan_cmd(args, builder, seed=args.seed)
        for builder in builders
    )


def _parse_endpoint(text: str) -> tuple:
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise SystemExit(
            f"error: endpoint {text!r} must look like HOST:PORT"
        )
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"error: bad port in endpoint {text!r}") from None


def _parse_autoscale(text):
    lo, sep, hi = text.partition(":")
    try:
        bounds = (int(lo), int(hi if sep else lo))
    except ValueError:
        bounds = None
    if bounds is None or not (0 <= bounds[0] <= bounds[1]) or (
        bounds[1] < 1
    ):
        raise SystemExit(
            f"error: --autoscale {text!r} must look like MIN:MAX "
            "with 0 <= MIN <= MAX and MAX >= 1"
        )
    return bounds


def _arm_cli_faults(args) -> bool:
    """Arm the ``--inject-faults`` plan, if the command carries one.

    Returns whether a plan was installed (the caller uninstalls in its
    ``finally`` so one CLI invocation never leaks an armed plan into
    library callers of :func:`main`).
    """
    path = getattr(args, "inject_faults", None)
    if not path:
        return False
    try:
        faults.install(faults.FaultPlan.load(path))
    except Exception as exc:
        raise SystemExit(
            f"error: cannot load fault plan {path!r}: {exc}"
        ) from None
    return True


def _make_campaign_runner(args, cache):
    """The runner `campaign` should use: local pool or distributed broker."""
    containment = dict(
        max_retries=args.max_retries,
        on_error=args.on_error,
        spec_timeout=args.spec_timeout,
    )
    if args.backend == "local":
        for flag in ("resume", "autoscale"):
            if getattr(args, flag):
                raise SystemExit(
                    f"error: --{flag} needs --backend dist"
                )
        return CampaignRunner(args.workers, cache=cache, **containment)
    if (args.dist_dir is None) == (args.listen is None):
        raise SystemExit(
            "error: --backend dist needs exactly one of --dist-dir/--listen"
        )
    if args.resume and args.dist_dir is None:
        raise SystemExit(
            "error: --resume needs --dist-dir (the ledger lives in "
            "the work directory)"
        )
    transport = (
        {"workdir": args.dist_dir}
        if args.dist_dir is not None
        else {"listen": _parse_endpoint(args.listen)}
    )
    autoscale = (
        _parse_autoscale(args.autoscale) if args.autoscale else None
    )
    if (
        args.spawn_workers == 0
        and autoscale is None
        and args.result_timeout is None
    ):
        print(
            "note: no --spawn-workers/--autoscale and no "
            "--result-timeout; the broker will wait indefinitely for "
            "external workers to attach",
            file=sys.stderr,
        )
    return DistributedRunner(
        cache=cache,
        n_local_workers=args.spawn_workers,
        autoscale=autoscale,
        lease_timeout=args.lease_timeout,
        heartbeat=args.heartbeat,
        chunk_size=args.chunk,
        resume=args.resume,
        result_timeout=args.result_timeout,
        **containment,
        **transport,
    )


def _cmd_campaign(args) -> str:
    """Run a seeded scenario campaign and print per-scheme aggregates.

    Spawns ``--scenarios`` independent child seeds from ``--seed`` via
    ``numpy.random.SeedSequence`` and runs every ``--schemes`` entry on
    each seeded workload (one hyperperiod, battery-evaluated), across
    ``--workers`` processes — or, with ``--backend dist``, across a
    worker fleet attached over ``--dist-dir`` (shared directory) or
    ``--listen`` (TCP); ``--spawn-workers K`` forks K local workers so
    one command is a self-contained fleet.  Results are cached on disk
    keyed by spec content hash (``--cache-dir``, default
    ``~/.cache/repro/campaign``; disable with ``--no-cache``), so
    re-running an unchanged campaign is free.  Aggregates are
    bit-identical for any worker count and either backend.
    """
    if args.scenarios < 1:
        raise SystemExit("error: --scenarios must be >= 1")
    if not args.schemes:
        raise SystemExit("error: --schemes must name at least one scheme")
    known = known_schemes()
    for scheme in args.schemes:
        if scheme not in known:
            raise SystemExit(
                f"error: unknown scheme {scheme!r}; known: {', '.join(known)}"
            )
    seeds = spawn_seeds(args.seed, args.scenarios)
    specs = [
        ScenarioSpec(
            scheme=scheme,
            n_graphs=args.graphs,
            utilization=args.utilization,
            seed=s,
            battery=args.battery,
            # Record misses instead of aborting the campaign: the
            # look-ahead schemes can legitimately overcommit near
            # worst-case actuals, and the misses column should say so.
            on_miss="record",
        )
        for s in seeds
        for scheme in args.schemes
    ]
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    armed = _arm_cli_faults(args)
    runner = _make_campaign_runner(args, cache)
    agg = StreamingAggregator(
        percentiles=(50.0,), group_by=lambda r: r.spec.scheme
    )
    try:
        campaign = runner.run(specs, aggregators=[agg])
    finally:
        if isinstance(runner, DistributedRunner):
            runner.close()
        if armed:
            faults.uninstall()
    stats = agg.summary()
    rows = []
    for scheme in args.schemes:
        if scheme not in stats:
            continue  # every scenario of this scheme was quarantined
        st = stats[scheme]
        life = st["lifetime_min"]
        rows.append(
            [
                scheme,
                life.mean,
                life.minimum,
                life.maximum,
                life.percentiles[50.0],
                st["delivered_mah"].mean,
                st["misses"].mean,
            ]
        )
    table = format_table(
        ["Scheme", "Life mean", "min", "max", "p50", "mAh mean", "misses"],
        rows,
        title=(
            f"Campaign — {args.scenarios} scenarios x "
            f"{len(args.schemes)} schemes (root seed {args.seed})"
        ),
        precision=1,
    )
    if args.no_footer:
        return table
    footer = (
        f"{len(specs)} scenarios, {campaign.n_workers} worker(s), "
        f"{campaign.wall_time_s:.2f}s wall, {campaign.cache_hits} cache "
        f"hit(s)"
    )
    if campaign.replayed:
        footer += f", {campaign.replayed} replayed from ledger"
    if campaign.requeued:
        footer += f", {campaign.requeued} requeued"
    if campaign.stolen:
        footer += f", {campaign.stolen} chunk(s) stolen"
    if campaign.retried:
        footer += f", {campaign.retried} retried"
    if campaign.quarantined:
        footer += f", {campaign.quarantined} quarantined"
    knobs = []
    if args.max_retries:
        knobs.append(f"max-retries={args.max_retries}")
    if args.spec_timeout is not None:
        knobs.append(f"spec-timeout={args.spec_timeout:g}s")
    if args.on_error != "raise":
        knobs.append(f"on-error={args.on_error}")
    if args.inject_faults:
        knobs.append(f"inject-faults={args.inject_faults}")
    if knobs:
        footer += "\nfault containment: " + ", ".join(knobs)
    if campaign.failures:
        quarantined = ", ".join(
            str(i) for i in campaign.failures.quarantined_indices
        )
        footer += f"\nquarantined spec indices: [{quarantined}]"
    return table + "\n" + footer


def _cmd_campaign_worker(args) -> str:
    """Serve a campaign broker as one worker process.

    Attach to a shared-directory queue (``--dir``, also usable across
    hosts via any shared mount) or a TCP broker (``--connect
    HOST:PORT``).  The worker leases work units, executes them with
    the exact seeds the broker assigned, streams results back, and
    exits on broker shutdown, after ``--max-tasks`` units, or after
    ``--idle-timeout`` seconds without work.
    """
    if (args.dir is None) == (args.connect is None):
        raise SystemExit(
            "error: campaign-worker needs exactly one of --dir/--connect"
        )
    # Custom schemes/batteries registered declaratively on the broker
    # arrive as a JSON snapshot in $REPRO_PLUGINS.
    install_env_plugins()
    # A broker running under --inject-faults ships its armed plan in
    # $REPRO_FAULT_PLAN; a worker may also arm one directly.
    faults.install_env_plan()
    _arm_cli_faults(args)
    options = dict(
        poll=args.poll,
        max_tasks=args.max_tasks,
        idle_timeout=args.idle_timeout,
        heartbeat=args.heartbeat,
    )
    if args.dir is not None:
        executed = run_directory_worker(args.dir, **options)
    else:
        host, port = _parse_endpoint(args.connect)
        executed = run_tcp_worker(
            host, port, reconnect_grace=args.reconnect_grace, **options
        )
    return f"campaign-worker: executed {executed} work unit(s)"


# ----------------------------------------------------------------------
# study — declarative repro.api plans
# ----------------------------------------------------------------------
def _parse_plan_args(pairs) -> dict:
    """``k=v`` overrides for a builtin plan builder (JSON-typed)."""
    overrides = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"error: --arg {pair!r} must look like name=value"
            )
        try:
            value = json.loads(raw)
        except ValueError:
            value = raw  # bare strings (e.g. estimator=oracle)
        overrides[key] = value
    return overrides


def _resolve_plan(args):
    """A StudyPlan from a builtin name or a JSON plan file."""
    from .api import load_plan, plans

    name = args.plan
    if name in plans.PLAN_BUILDERS:
        try:
            return plans.build_plan(name, **_parse_plan_args(args.arg))
        except TypeError:
            import inspect

            valid = sorted(
                inspect.signature(
                    plans.PLAN_BUILDERS[name]
                ).parameters
            )
            raise SystemExit(
                f"error: bad --arg for plan {name!r}; valid names: "
                f"{', '.join(valid)}"
            ) from None
    if name.endswith(".json"):
        if args.arg:
            raise SystemExit(
                "error: --arg overrides only apply to builtin plans; "
                "edit the plan file instead"
            )
        return load_plan(name)
    raise SystemExit(
        f"error: {name!r} is neither a builtin plan "
        f"({', '.join(sorted(plans.PLAN_BUILDERS))}) nor a .json "
        "plan file"
    )


def _cmd_study_run(args) -> str:
    """Execute a study plan and print its report.

    ``PLAN`` is a builtin plan name (see ``study plans``; scale
    overrides via repeatable ``--arg name=value``) or a path to a
    JSON plan file (``study export`` writes one).  ``--format
    report`` prints the plan's rendered tables (builtin plans
    reproduce the legacy driver output byte-for-byte), ``csv`` the
    full typed result frame, ``json`` frame + execution telemetry.
    """
    from .api import Study

    plan = _resolve_plan(args)
    cache = (
        ResultCache(args.cache_dir) if args.cache_dir is not None else None
    )
    armed = _arm_cli_faults(args)
    runner = _driver_runner(args, cache=cache)
    try:
        result = Study(
            plan,
            runner=runner,
            workers=args.workers,
            cache=cache,
            max_retries=args.max_retries,
            spec_timeout=args.spec_timeout,
            on_error=args.on_error,
        ).run()
    finally:
        if runner is not None:
            runner.close()
        if armed:
            faults.uninstall()
    if args.format == "csv":
        return result.frame.to_csv().rstrip("\n")
    if args.format == "json":
        return json.dumps(
            {
                "plan": plan.to_json(),
                "telemetry": result.campaign.telemetry,
                "frame": result.frame.to_json(),
            },
            indent=1,
            sort_keys=False,
        )
    return result.format()


def _cmd_study_axes(args) -> str:
    """List every registered axis value a sweep can name."""
    from .api import known_names, load_entry_points
    from .campaign.spec import _SPEC_TYPES
    from dataclasses import fields as dc_fields

    load_entry_points()
    lines = ["Registered axes (repro.api.registry):"]
    for kind, names in known_names().items():
        lines.append(f"  {kind}: {', '.join(names)}")
    lines.append("")
    lines.append("Spec kinds and their sweepable fields:")
    for kind, cls in _SPEC_TYPES.items():
        names = ", ".join(f.name for f in dc_fields(cls))
        lines.append(f"  {kind}: {names}")
    return "\n".join(lines)


def _cmd_study_plans(args) -> str:
    """List the builtin study plans."""
    from .api import plans

    lines = ["Builtin plans (study run NAME [--arg k=v ...]):"]
    for name in sorted(plans.PLAN_BUILDERS):
        plan = plans.build_plan(name)
        specs = len(plan.sweep.expand())
        lines.append(
            f"  {name:22s} {plan.description} "
            f"({specs} specs at default scale)"
        )
    return "\n".join(lines)


def _cmd_study_export(args) -> str:
    """Write a builtin plan (with overrides) as a JSON plan file.

    The file round-trips through ``study run plan.json``: same sweep,
    same seeds, same spec hashes — the legacy-output renderer is code
    and is not serialized, so a file-run prints the generic frame
    summary (or use ``--format csv``).
    """
    from .api import plans

    plan = plans.build_plan(args.plan, **_parse_plan_args(args.arg))
    text = json.dumps(plan.to_json(), indent=2) + "\n"
    if args.out is None:
        return text.rstrip("\n")
    with open(args.out, "w") as handle:
        handle.write(text)
    return f"wrote {args.out}"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the tables and figures of 'Battery Aware Dynamic "
            "Scheduling for Periodic Task Graphs' (Rao et al., 2006)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="energy vs exhaustive optimal")
    p.add_argument("--sizes", type=int, nargs="+", default=list(range(5, 16)))
    p.add_argument("--graphs-per-size", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(fn=_cmd_table1)

    def add_containment_flags(p) -> None:
        """Fault-containment knobs shared by campaign/study commands."""
        p.add_argument(
            "--max-retries", type=int, default=0,
            help="retry a failed spec this many times (deterministic "
            "seeded backoff) before quarantining or aborting",
        )
        p.add_argument(
            "--spec-timeout", type=float, default=None,
            help="per-spec execution deadline in seconds; a timeout "
            "counts as a retryable failure",
        )
        p.add_argument(
            "--on-error", choices=("raise", "quarantine"),
            default="raise",
            help="what to do with a spec that exhausts its retry "
            "budget: abort the campaign (raise) or quarantine it "
            "into the failure report and keep the rest",
        )
        p.add_argument(
            "--inject-faults", default=None, metavar="PLAN.json",
            help="arm a seeded repro.faults injection plan for this "
            "run (chaos/robustness testing)",
        )

    def add_driver_backend(p) -> None:
        """Distributed-backend flags shared by table2/fig6."""
        p.add_argument(
            "--backend", choices=("local", "dist"), default="local",
            help="run the sweep on a local pool or a distributed fleet",
        )
        p.add_argument(
            "--dist-dir", default=None,
            help="dist backend: shared work-queue directory",
        )
        p.add_argument(
            "--spawn-workers", type=int, default=0,
            help="dist backend: worker subprocesses to fork on this host",
        )
        p.add_argument(
            "--result-timeout", type=float, default=None,
            help="dist backend: fail if no result arrives for this long",
        )

    p = sub.add_parser("table2", help="charge delivered + battery lifetime")
    p.add_argument("--sets", type=int, default=5)
    p.add_argument("--graphs", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    add_driver_backend(p)
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser("fig4", help="LTF vs STF motivational example")
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("fig5", help="EDF vs pUBS+feasibility traces")
    p.set_defaults(fn=_cmd_fig5)

    p = sub.add_parser("fig6", help="ordering schemes vs near-optimal")
    p.add_argument("--counts", type=int, nargs="+", default=[2, 3, 4, 5, 6])
    p.add_argument("--sets", type=int, default=2)
    p.add_argument("--utilization", type=float, default=0.85)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    add_driver_backend(p)
    p.set_defaults(fn=_cmd_fig6)

    p = sub.add_parser("ratecapacity", help="load vs delivered capacity")
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(fn=_cmd_ratecapacity)

    p = sub.add_parser(
        "study",
        help="declarative repro.api studies: run plans, list axes",
    )
    ssub = p.add_subparsers(dest="study_command", required=True)

    sp = ssub.add_parser(
        "run",
        help="run a builtin plan or a JSON plan file",
        description=_cmd_study_run.__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sp.add_argument(
        "plan",
        help="builtin plan name (see 'study plans') or path/to/plan.json",
    )
    sp.add_argument(
        "--arg", action="append", metavar="NAME=VALUE",
        help="builtin-plan scale override (repeatable; JSON-typed)",
    )
    sp.add_argument("--workers", type=int, default=1)
    sp.add_argument(
        "--format", choices=("report", "csv", "json"), default="report",
        help="report: the plan's rendered tables; csv/json: the frame",
    )
    sp.add_argument(
        "--cache-dir", default=None,
        help="attach a content-hash result cache at this directory",
    )
    add_driver_backend(sp)
    add_containment_flags(sp)
    sp.set_defaults(fn=_cmd_study_run)

    sp = ssub.add_parser(
        "axes", help="list registered schemes/batteries/... and fields"
    )
    sp.set_defaults(fn=_cmd_study_axes)

    sp = ssub.add_parser("plans", help="list builtin study plans")
    sp.set_defaults(fn=_cmd_study_plans)

    sp = ssub.add_parser(
        "export",
        help="write a builtin plan as a JSON plan file",
        description=_cmd_study_export.__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sp.add_argument("plan", help="builtin plan name")
    sp.add_argument(
        "--arg", action="append", metavar="NAME=VALUE",
        help="builtin-plan scale override (repeatable; JSON-typed)",
    )
    sp.add_argument(
        "-o", "--out", default=None, help="output path (default: stdout)"
    )
    sp.set_defaults(fn=_cmd_study_export)

    p = sub.add_parser("coherence", help="battery model agreement (Figs 2-3)")
    p.set_defaults(fn=_cmd_coherence)

    p = sub.add_parser("ablations", help="all four design-choice ablations")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(fn=_cmd_ablations)

    p = sub.add_parser(
        "campaign",
        help="seeded scenario campaign (parallel, cached, deterministic)",
        description=_cmd_campaign.__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "--scenarios", type=int, default=10,
        help="number of independent seeded workloads",
    )
    p.add_argument("--graphs", type=int, default=4)
    p.add_argument("--utilization", type=float, default=0.7)
    p.add_argument(
        "--schemes", nargs="+",
        default=["EDF", "ccEDF", "laEDF", "BAS-1", "BAS-2"],
        help="campaign-registry scheme names to run per scenario",
    )
    p.add_argument("--battery", default="stochastic")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default ~/.cache/repro/campaign "
        "or $REPRO_CAMPAIGN_CACHE)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p.add_argument(
        "--backend", choices=("local", "dist"), default="local",
        help="local multiprocessing pool, or distributed broker/worker",
    )
    p.add_argument(
        "--dist-dir", default=None,
        help="dist backend: shared work-queue directory for the fleet",
    )
    p.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="dist backend: TCP endpoint to serve workers on",
    )
    p.add_argument(
        "--spawn-workers", type=int, default=0,
        help="dist backend: worker subprocesses to fork on this host",
    )
    p.add_argument(
        "--lease-timeout", type=float, default=60.0,
        help="dist backend: seconds without lease renewal before a "
        "claim is assumed dead and requeued",
    )
    p.add_argument(
        "--heartbeat", type=float, default=15.0,
        help="dist backend: lease-renewal interval passed to spawned "
        "workers (keeps long scenarios from being requeued)",
    )
    p.add_argument(
        "--chunk", type=int, default=1,
        help="dist backend: tasks per lease; >1 amortizes claim "
        "overhead for very short scenarios (idle workers steal "
        "chunk tails)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="dist backend: replay the work directory's result ledger "
        "from a previous (crashed) broker instead of re-running "
        "completed scenarios",
    )
    p.add_argument(
        "--autoscale", default=None, metavar="MIN:MAX",
        help="dist backend: grow/shrink the local worker fleet with "
        "the backlog (overrides --spawn-workers)",
    )
    p.add_argument(
        "--result-timeout", type=float, default=None,
        help="dist backend: fail if no result arrives for this long",
    )
    p.add_argument(
        "--no-footer", action="store_true",
        help="omit the wall-clock footer (for byte-exact output diffs)",
    )
    add_containment_flags(p)
    p.set_defaults(fn=_cmd_campaign)

    p = sub.add_parser(
        "campaign-worker",
        help="serve a distributed campaign broker as one worker",
        description=_cmd_campaign_worker.__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "--dir", default=None,
        help="shared work-queue directory published by the broker",
    )
    p.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="TCP broker endpoint to lease work from",
    )
    p.add_argument("--poll", type=float, default=0.05)
    p.add_argument(
        "--max-tasks", type=int, default=None,
        help="exit after executing this many work units",
    )
    p.add_argument(
        "--idle-timeout", type=float, default=None,
        help="exit after this many seconds without work (default: never)",
    )
    p.add_argument(
        "--heartbeat", type=float, default=15.0,
        help="renew the current lease every this many seconds while "
        "a scenario executes (guards against false requeues)",
    )
    p.add_argument(
        "--reconnect-grace", type=float, default=0.0,
        help="TCP only: seconds to keep retrying a refused connection "
        "after the broker was reached once (lets a restarting "
        "--resume broker keep its fleet)",
    )
    p.add_argument(
        "--inject-faults", default=None, metavar="PLAN.json",
        help="arm a seeded repro.faults injection plan in this worker "
        "(chaos/robustness testing)",
    )
    p.set_defaults(fn=_cmd_campaign_worker)

    p = sub.add_parser(
        "check",
        help="static determinism & concurrency analyzer "
        "(python -m repro check --help)",
        add_help=False,
    )
    p.set_defaults(fn=None)

    p = sub.add_parser("all", help="every table and figure, quick scales")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=None)

    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "check":
        # Dispatched before argparse: the analyzer owns its whole
        # flag namespace (argparse.REMAINDER drops leading flags).
        from .check.cli import main as check_main

        return check_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "all":
        order = [
            ("table1", _cmd_table1),
            ("table2", _cmd_table2),
            ("fig4", _cmd_fig4),
            ("fig5", _cmd_fig5),
            ("fig6", _cmd_fig6),
            ("ratecapacity", _cmd_ratecapacity),
            ("coherence", _cmd_coherence),
        ]
        for name, fn in order:
            sub_args = build_parser().parse_args(
                [name] if name not in ("table1", "table2", "fig6")
                else [name, "--seed", str(args.seed)]
            )
            print(fn(sub_args))
            print()
        return 0
    print(args.fn(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())

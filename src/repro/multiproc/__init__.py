"""Partitioned multiprocessor extension (paper refs [1], [15])."""

from .partition import MultiprocResult, partition_task_set, run_partitioned

__all__ = ["partition_task_set", "run_partitioned", "MultiprocResult"]

"""Partitioned multiprocessor scheduling (extension).

The paper's related work ([1] Chowdhury & Chakrabarti, [15] Chai et
al.) extends battery-aware DVS scheduling to multiprocessor platforms
sharing one battery.  This module builds that extension on top of the
single-processor methodology: task graphs are *partitioned* across
processors (each graph runs wholly on one core — precedence edges
never cross cores, the standard partitioned model), each core runs an
independent BAS instance, and the shared battery sees the *sum* of the
per-core current profiles.

Partitioning heuristics are the classic utilization bin-packers:

* ``worst-fit`` (default) — balance load across cores, which both
  maximizes per-core slack for DVS and flattens the summed current,
  exactly what the battery guidelines favour;
* ``first-fit`` / ``best-fit`` — the consolidating packers, kept for
  the ablation that shows why balancing wins on a shared battery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.methodology import Scheme
from ..errors import SchedulingError
from ..processor.platform import Processor
from ..sim.engine import ActualsProvider, SimulationResult, Simulator
from ..sim.profile import CurrentProfile
from ..taskgraph.periodic import PeriodicTaskGraph, TaskGraphSet

__all__ = ["partition_task_set", "run_partitioned", "MultiprocResult"]

_STRATEGIES = ("worst-fit", "first-fit", "best-fit")


def partition_task_set(
    task_set: TaskGraphSet,
    n_processors: int,
    *,
    strategy: str = "worst-fit",
) -> Tuple[TaskGraphSet, ...]:
    """Split a periodic set across ``n_processors`` by utilization.

    Graphs are placed in decreasing-utilization order (the standard
    "decreasing" variants of the packers).  Raises if any graph cannot
    fit on any core without exceeding utilization 1 — partitioned EDF's
    schedulability limit per core.  Cores a consolidating strategy
    leaves unused appear as ``None`` in the returned tuple.
    """
    if n_processors < 1:
        raise SchedulingError(
            f"n_processors must be >= 1, got {n_processors}"
        )
    if strategy not in _STRATEGIES:
        raise SchedulingError(
            f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
        )
    bins: List[List[PeriodicTaskGraph]] = [[] for _ in range(n_processors)]
    loads = [0.0] * n_processors
    for g in sorted(task_set, key=lambda p: -p.utilization):
        candidates = [
            k for k in range(n_processors) if loads[k] + g.utilization <= 1.0
        ]
        if not candidates:
            raise SchedulingError(
                f"graph {g.name!r} (u={g.utilization:.3f}) fits on no core "
                f"(loads={['%.3f' % l for l in loads]})"
            )
        if strategy == "worst-fit":
            k = min(candidates, key=lambda i: loads[i])
        elif strategy == "best-fit":
            k = max(candidates, key=lambda i: loads[i])
        else:  # first-fit
            k = candidates[0]
        bins[k].append(g)
        loads[k] += g.utilization
    # Consolidating strategies may leave cores empty — a fully idle
    # core is legitimate (it still draws idle current from the shared
    # battery); represented as None.
    return tuple(TaskGraphSet(b) if b else None for b in bins)


@dataclass
class MultiprocResult:
    """Outcome of a partitioned multiprocessor run.

    ``per_core[i]`` is ``None`` for cores the partitioner left idle;
    their idle-current draw (``idle_currents[i]``) still reaches the
    shared battery via :meth:`combined_profile`.
    """

    per_core: Tuple[Optional[SimulationResult], ...]
    partitions: Tuple[Optional[TaskGraphSet], ...]
    idle_currents: Tuple[float, ...]
    horizon: float

    def active(self) -> Tuple[SimulationResult, ...]:
        return tuple(r for r in self.per_core if r is not None)

    @property
    def energy(self) -> float:
        # repro: noqa[DET004] -- per_core results are ordered by core
        # index; addition order is fixed
        return sum(r.energy for r in self.active())

    @property
    def misses(self) -> int:
        return sum(len(r.misses) for r in self.active())

    def combined_profile(self) -> CurrentProfile:
        """The shared battery's view: the sum of all core currents."""
        import numpy as np

        profile: Optional[CurrentProfile] = None
        idle_total = 0.0
        for res, idle in zip(self.per_core, self.idle_currents):
            if res is None:
                idle_total += idle
                continue
            p = res.profile()
            profile = p if profile is None else profile.add(p)
        if profile is None:
            raise SchedulingError("no active core in multiproc result")
        if idle_total > 0:
            flat = CurrentProfile(
                np.array([profile.total_time]), np.array([idle_total])
            )
            profile = profile.add(flat)
        return profile.merged()

    @property
    def mean_current(self) -> float:
        return self.combined_profile().mean_current

    def core_utilizations(self) -> Tuple[float, ...]:
        return tuple(
            p.utilization if p is not None else 0.0 for p in self.partitions
        )


def run_partitioned(
    task_set: TaskGraphSet,
    processors: Sequence[Processor],
    scheme: Scheme,
    horizon: float,
    *,
    actuals: Optional[ActualsProvider] = None,
    strategy: str = "worst-fit",
    on_miss: str = "raise",
) -> MultiprocResult:
    """Partition ``task_set`` over ``processors`` and run one scheme
    instance per core for ``horizon`` seconds.

    Every core gets a *fresh* DVS/policy instance (they are stateful),
    and all cores share the actuals provider, so a graph's actual
    demands do not depend on where it was placed.
    """
    if not processors:
        raise SchedulingError("need at least one processor")
    partitions = partition_task_set(
        task_set, len(processors), strategy=strategy
    )
    results: List[Optional[SimulationResult]] = []
    for proc, part in zip(processors, partitions):
        if part is None:
            results.append(None)
            continue
        dvs, policy = scheme.instantiate()
        sim = Simulator(
            part, proc, dvs, policy, actuals=actuals, on_miss=on_miss
        )
        results.append(sim.run(horizon))
    return MultiprocResult(
        per_core=tuple(results),
        partitions=partitions,
        idle_currents=tuple(p.idle_current() for p in processors),
        horizon=horizon,
    )

"""The paper's tables, figures, and ablations as declarative plans.

Each builder returns a :class:`~repro.api.study.StudyPlan` whose
sweep expands to *exactly* the spec list (same specs, same order) the
legacy driver in :mod:`repro.analysis.experiments` built by hand — so
results, cache hits, and formatted output are byte-identical between
the two paths — plus an ``adapt`` hook producing the historical
result dataclass and a ``render`` hook printing the paper's rows.

Scale parameters mirror the legacy drivers (quick defaults; pass the
paper's full scale when you have the minutes).  Builders accept
registry *names* only — callers holding live factory objects register
them first (see :mod:`repro.api.registry`).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..campaign.registry import NEAR_OPTIMAL
from ..errors import SchedulingError
from .results import (
    AblationResult,
    Fig6Result,
    ModelCoherenceResult,
    RateCapacityResult,
    Table1Result,
    Table2Result,
)
from .study import StudyPlan, StudyResult
from .sweep import Sweep

__all__ = [
    "PAPER_SCHEME_NAMES",
    "FIG6_SCHEME_NAMES",
    "PLAN_BUILDERS",
    "build_plan",
    "table1_plan",
    "table2_plan",
    "fig6_plan",
    "model_coherence_plan",
    "rate_capacity_plan",
    "ablation_estimator_plan",
    "ablation_freqset_plan",
    "ablation_dvs_plan",
    "ablation_feasibility_plan",
]

#: Table 2 scheme rows (campaign-registry names, paper order).
PAPER_SCHEME_NAMES: Tuple[str, ...] = (
    "EDF", "ccEDF", "laEDF", "BAS-1", "BAS-2"
)

#: Figure 6 ordering schemes (campaign-registry names; all use laEDF).
FIG6_SCHEME_NAMES: Tuple[str, ...] = (
    "random", "LTF", "pUBS-imminent", "pUBS-all"
)


def _series(res: StudyResult, keys, value) -> Dict[Tuple, float]:
    """Group-mean series in first-appearance order (deterministic)."""
    return res.frame.group_by(*keys).series(value)


# ----------------------------------------------------------------------
# Table 1 — single-DAG energy vs exhaustive optimal
# ----------------------------------------------------------------------
def table1_plan(
    *,
    sizes: Sequence[int] = tuple(range(5, 16)),
    graphs_per_size: int = 5,
    seed: int = 0,
    processor: str = "paper",
    utilization: float = 1.0,
    actual_range: Tuple[float, float] = (0.2, 1.0),
    edge_prob: float = 0.4,
    max_extensions: int = 200_000,
    n_random: int = 5,
) -> StudyPlan:
    """Table 1: Random / LTF / pUBS energy vs exhaustive optimal.

    One spawn-seeded :class:`~repro.campaign.spec.OneShotSpec` per
    (size, replicate) — sizes outermost, so enlarging
    ``graphs_per_size`` re-seeds like the legacy driver, while adding
    sizes appends whole blocks.
    """
    lo, hi = actual_range
    sweep = (
        Sweep(
            "oneshot",
            edge_prob=edge_prob,
            utilization=utilization,
            actual_low=lo,
            actual_high=hi,
            max_extensions=max_extensions,
            n_random=n_random,
            processor=processor,
        )
        .grid(n_tasks=[int(n) for n in sizes])
        .grid(_rep=list(range(graphs_per_size)))
        .seed(mode="spawn", root=seed)
    )

    def adapt(res: StudyResult) -> Table1Result:
        means = res.frame.group_by("n_tasks").mean()
        return Table1Result(
            sizes=tuple(int(n) for n in means.column("n_tasks")),
            random=tuple(float(v) for v in means.column("random")),
            ltf=tuple(float(v) for v in means.column("ltf")),
            pubs=tuple(float(v) for v in means.column("pubs")),
            graphs_per_size=graphs_per_size,
        )

    return StudyPlan(
        name="table1",
        description="energy vs exhaustive optimal per DAG size",
        sweep=sweep,
        group_by=("n_tasks",),
        metrics=("random", "ltf", "pubs"),
        adapt=adapt,
        render=lambda res: adapt(res).format(),
    )


# ----------------------------------------------------------------------
# Table 2 — charge delivered and battery lifetime per scheme
# ----------------------------------------------------------------------
def table2_plan(
    *,
    n_sets: int = 5,
    n_graphs: int = 4,
    seed: int = 0,
    utilization: float = 0.7,
    battery: str = "stochastic",
    rebin: Optional[float] = 1.0,
    estimator: str = "history",
    schemes: Sequence[str] = PAPER_SCHEME_NAMES,
    processor: str = "paper",
    display: Optional[Mapping[str, str]] = None,
) -> StudyPlan:
    """Table 2: five schemes' charge delivered and battery lifetime.

    Replicates are the outer axis with ``seed + rep`` seeding (shared
    by every scheme in a set, and copied to ``battery_seed``), exactly
    like the legacy driver.  ``display`` optionally maps registry
    names to row labels (used by the shim for caller-supplied
    schemes).
    """
    names = {s: (display or {}).get(s, s) for s in schemes}
    sweep = (
        Sweep(
            "scenario",
            n_graphs=n_graphs,
            utilization=utilization,
            battery=battery,
            estimator=estimator,
            processor=processor,
            rebin=rebin,
        )
        .grid(_rep=list(range(n_sets)))
        .grid(scheme=list(schemes))
        .seed(
            mode="offset",
            root=seed,
            terms={"_rep": 1},
            also=("battery_seed",),
        )
    )

    def adapt(res: StudyResult) -> Table2Result:
        means = res.frame.group_by("scheme").mean()
        return Table2Result(
            scheme_names=tuple(
                names[s] for s in means.column("scheme")
            ),
            delivered_mah=tuple(
                float(v) for v in means.column("delivered_mah")
            ),
            lifetime_min=tuple(
                float(v) for v in means.column("lifetime_min")
            ),
            n_sets=n_sets,
        )

    return StudyPlan(
        name="table2",
        description="charge delivered + battery lifetime per scheme",
        sweep=sweep,
        group_by=("scheme",),
        metrics=("delivered_mah", "lifetime_min"),
        adapt=adapt,
        render=lambda res: adapt(res).format(),
    )


# ----------------------------------------------------------------------
# Figure 6 — ordering schemes vs near-optimal, growing graph count
# ----------------------------------------------------------------------
def fig6_plan(
    *,
    graph_counts: Sequence[int] = (2, 3, 4, 5, 6),
    sets_per_point: int = 3,
    seed: int = 0,
    utilization: float = 0.7,
    horizon: Optional[float] = None,
    estimator: str = "oracle",
    processor: str = "paper",
) -> StudyPlan:
    """Figure 6: ordering-scheme energy normalized by the
    precedence-relaxed near-optimal run on the identical workload.

    The near-optimal reference rides in the scheme axis; a
    ``normalize`` post-op divides each row's energy by its
    (count, replicate) group's reference, then the reference rows are
    excluded — declaratively reproducing the legacy pairing loop.
    """
    sweep = (
        Sweep(
            "scenario",
            utilization=utilization,
            horizon=horizon,
            estimator=estimator,
            processor=processor,
        )
        .grid(n_graphs=[int(c) for c in graph_counts])
        .grid(_rep=list(range(sets_per_point)))
        .grid(scheme=[NEAR_OPTIMAL, *FIG6_SCHEME_NAMES])
        .seed(mode="offset", root=seed, terms={"n_graphs": 1000, "_rep": 1})
    )
    post = (
        {
            "op": "normalize",
            "value": "energy_j",
            "reference": {"scheme": NEAR_OPTIMAL},
            "within": ["n_graphs", "_rep"],
            "name": "energy_rel",
        },
        {"op": "exclude", "where": {"scheme": NEAR_OPTIMAL}},
    )

    def adapt(res: StudyResult) -> Fig6Result:
        series: Dict[str, Tuple[float, ...]] = {
            name: () for name in FIG6_SCHEME_NAMES
        }
        for (scheme, _count), mean in _series(
            res, ("scheme", "n_graphs"), "energy_rel"
        ).items():
            series[scheme] = series[scheme] + (float(mean),)
        return Fig6Result(
            graph_counts=tuple(int(c) for c in graph_counts),
            series=series,
            sets_per_point=sets_per_point,
        )

    return StudyPlan(
        name="fig6",
        description="ordering schemes vs near-optimal energy",
        sweep=sweep,
        post=post,
        group_by=("scheme", "n_graphs"),
        metrics=("energy_rel",),
        adapt=adapt,
        render=lambda res: adapt(res).format(),
    )


# ----------------------------------------------------------------------
# Figures 2-3 — KiBaM vs diffusion vs stochastic coherence
# ----------------------------------------------------------------------
#: Display label per battery registry name (coherence study).
_COHERENCE_MODELS: Tuple[Tuple[str, str], ...] = (
    ("KiBaM", "kibam"),
    ("diffusion", "diffusion"),
    ("stochastic", "stochastic:noise=0.05"),
    ("Peukert", "peukert"),
)

_COHERENCE_SHAPES: Tuple[Tuple[str, Tuple[float, ...]], ...] = (
    ("decreasing", (1.5, 1.0, 0.5)),
    ("mixed", (1.0, 1.5, 0.5)),
    ("increasing", (0.5, 1.0, 1.5)),
)


def model_coherence_plan(
    *,
    mean_current: float = 1.8,
    fill: float = 0.75,
) -> StudyPlan:
    """Figures 2-3: survival-scale ranking of load permutations, per
    battery model (guideline 1 coherence)."""
    from ..battery.calibrate import paper_cell_kibam

    step_t = fill * paper_cell_kibam().capacity / mean_current / 3.0
    shape_names = [name for name, _factors in _COHERENCE_SHAPES]
    currents = [
        tuple(f * mean_current for f in factors)
        for _name, factors in _COHERENCE_SHAPES
    ]
    display = {reg: disp for disp, reg in _COHERENCE_MODELS}
    sweep = (
        Sweep("survival", battery_seed=0)
        .grid(battery=[reg for _disp, reg in _COHERENCE_MODELS])
        .zip(
            _shape=shape_names,
            durations=[(step_t,) * 3] * len(shape_names),
            currents=currents,
        )
    )

    def adapt(res: StudyResult) -> ModelCoherenceResult:
        pivot = res.frame.pivot(
            "battery", "_shape", "survival_scale", agg="first"
        )
        margins = {
            display[reg]: tuple(
                float(v) for v in pivot.cells[i]
            )
            for i, reg in enumerate(pivot.row_labels)
        }
        return ModelCoherenceResult(
            shapes=tuple(pivot.column_labels), margins=margins
        )

    return StudyPlan(
        name="coherence",
        description="battery models agree on load-shape friendliness",
        sweep=sweep,
        group_by=("battery", "_shape"),
        metrics=("survival_scale",),
        adapt=adapt,
        render=lambda res: adapt(res).format(),
    )


# ----------------------------------------------------------------------
# Rate-capacity curve (the battery Figure 5)
# ----------------------------------------------------------------------
def rate_capacity_plan(
    *,
    currents: Sequence[float] = (0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0),
    models: Optional[Mapping[str, str]] = None,
) -> StudyPlan:
    """Load vs delivered capacity, one constant-current discharge per
    (model, current) — each a cacheable campaign scenario.

    ``models`` maps display label → battery registry name; defaults to
    the three calibrated paper cells.  The curve's extrapolated ends
    (maximum/available capacity) are closed-form KiBaM anchors,
    computed in the adapter.
    """
    entries: Tuple[Tuple[str, str], ...] = tuple(
        (models or {
            "KiBaM": "kibam",
            "diffusion": "diffusion",
            "stochastic": "stochastic",
        }).items()
    )
    display = {reg: disp for disp, reg in entries}
    swept = sorted(float(c) for c in currents)
    if not swept:
        raise SchedulingError("need at least one sweep current")
    sweep = (
        Sweep("constantload", battery_seed=0, max_time=1e8)
        .grid(battery=[reg for _disp, reg in entries])
        .grid(current=swept)
    )

    def adapt(res: StudyResult) -> RateCapacityResult:
        from ..battery.calibrate import paper_cell_kibam
        from ..battery.ratecapacity import extrapolated_capacities

        delivered: Dict[str, Tuple[float, ...]] = {}
        frame = res.frame
        for _disp, reg in entries:
            sub = frame.filter(battery=reg)
            delivered[display[reg]] = tuple(
                float(v) / 3.6 for v in sub.column("delivered_c")
            )
        max_c, avail_c = extrapolated_capacities(paper_cell_kibam())
        return RateCapacityResult(
            # Labelled in sweep (ascending) order — the order the
            # delivered columns are in.  (The legacy driver printed
            # caller-order labels against sorted-order values,
            # misaligning rows for unsorted input.)
            currents=tuple(swept),
            delivered_mah=delivered,
            max_capacity_mah=max_c / 3.6,
            available_capacity_mah=avail_c / 3.6,
        )

    return StudyPlan(
        name="ratecapacity",
        description="load vs delivered capacity per battery model",
        sweep=sweep,
        group_by=("battery", "current"),
        metrics=("delivered_c", "lifetime_s"),
        adapt=adapt,
        render=lambda res: adapt(res).format(),
    )


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
def _ablation_adapter(
    title: str,
    factor: str,
    level_axis: str,
    labels: Mapping,
    metric: str,
    metric_label: str,
    notes: str = "",
):
    def adapt(res: StudyResult) -> AblationResult:
        means = _series(res, (level_axis,), metric)
        return AblationResult(
            title=title,
            factor=factor,
            levels=tuple(labels[key] for (key,) in means),
            metrics={
                metric_label: tuple(
                    float(v) for v in means.values()
                )
            },
            notes=notes,
        )

    return adapt


def ablation_estimator_plan(
    *,
    n_sets: int = 3,
    n_graphs: int = 4,
    seed: int = 0,
    utilization: float = 0.9,
    processor: str = "paper",
) -> StudyPlan:
    """X_k estimate accuracy: worst-case → scaled → history → oracle
    (BAS-2 energy should fall with estimator quality)."""
    estimators = ("worst-case", "scaled", "history", "oracle")
    sweep = (
        Sweep(
            "scenario",
            scheme="BAS-2",
            n_graphs=n_graphs,
            utilization=utilization,
            processor=processor,
        )
        .grid(_rep=list(range(n_sets)))
        .grid(estimator=list(estimators))
        .seed(mode="offset", root=seed, terms={"_rep": 1})
    )
    adapt = _ablation_adapter(
        "Ablation — pUBS estimate accuracy (BAS-2 energy, J)",
        "estimator",
        "estimator",
        {e: e for e in estimators},
        "energy_j",
        "energy (J)",
    )
    return StudyPlan(
        name="ablation-estimator",
        description="pUBS estimate accuracy vs energy",
        sweep=sweep,
        group_by=("estimator",),
        metrics=("energy_j",),
        adapt=adapt,
        render=lambda res: adapt(res).format(),
    )


def ablation_freqset_plan(
    *,
    n_sets: int = 3,
    n_graphs: int = 4,
    seed: int = 0,
) -> StudyPlan:
    """Frequency-table granularity: the paper's 3 levels vs finer
    tables (gains should be modest — Gaujal-Navet)."""
    processors = {
        "freqset:levels=3": "3 levels (paper)",
        "freqset:levels=5": "5 levels",
        "freqset:levels=9": "9 levels",
    }
    sweep = (
        Sweep("scenario", scheme="BAS-2", n_graphs=n_graphs)
        .grid(_rep=list(range(n_sets)))
        .grid(processor=list(processors))
        .seed(mode="offset", root=seed, terms={"_rep": 1})
    )
    adapt = _ablation_adapter(
        "Ablation — frequency-table granularity (BAS-2 energy, J)",
        "table",
        "processor",
        processors,
        "energy_j",
        "energy (J)",
    )
    return StudyPlan(
        name="ablation-freqset",
        description="frequency-table granularity vs energy",
        sweep=sweep,
        group_by=("processor",),
        metrics=("energy_j",),
        adapt=adapt,
        render=lambda res: adapt(res).format(),
    )


def ablation_dvs_plan(
    *,
    n_sets: int = 3,
    n_graphs: int = 4,
    seed: int = 0,
    processor: str = "paper",
) -> StudyPlan:
    """DVS algorithm × ready-list policy grid (§4's plug-and-play
    claim)."""
    grid = (
        "ccEDF+imminent",
        "ccEDF+all-released",
        "laEDF+imminent",
        "laEDF+all-released",
    )
    sweep = (
        Sweep(
            "scenario",
            n_graphs=n_graphs,
            estimator="history",
            processor=processor,
        )
        .grid(_rep=list(range(n_sets)))
        .grid(scheme=list(grid))
        .seed(mode="offset", root=seed, terms={"_rep": 1})
    )
    adapt = _ablation_adapter(
        "Ablation — DVS algorithm x ready list (pUBS energy, J)",
        "combination",
        "scheme",
        {g: g for g in grid},
        "energy_j",
        "energy (J)",
    )
    return StudyPlan(
        name="ablation-dvs",
        description="DVS algorithm x ready-list grid",
        sweep=sweep,
        group_by=("scheme",),
        metrics=("energy_j",),
        adapt=adapt,
        render=lambda res: adapt(res).format(),
    )


def ablation_feasibility_plan(
    *,
    n_sets: int = 5,
    n_graphs: int = 4,
    seed: int = 0,
    utilization: float = 0.92,
    actual_range: Tuple[float, float] = (0.6, 1.0),
    processor: str = "paper",
) -> StudyPlan:
    """Remove the Algorithm 2 guard from BAS-2 and count deadline
    misses (stressed regime; guarded must stay clean)."""
    lo, hi = actual_range
    variants = {"BAS-2": "guarded", "BAS-2/unguarded": "unguarded"}
    sweep = (
        Sweep(
            "scenario",
            n_graphs=n_graphs,
            utilization=utilization,
            estimator="history",
            processor=processor,
            actual_low=lo,
            actual_high=hi,
            on_miss="record",
        )
        .grid(_rep=list(range(n_sets)))
        .grid(scheme=list(variants))
        .seed(mode="offset", root=seed, terms={"_rep": 1})
    )
    adapt = _ablation_adapter(
        "Ablation — feasibility check (deadline misses per set)",
        "variant",
        "scheme",
        variants,
        "misses",
        "misses",
        notes=(
            "guarded BAS-2 must show 0 misses; unguarded generally "
            "not."
        ),
    )
    return StudyPlan(
        name="ablation-feasibility",
        description="Algorithm 2 guard vs deadline misses",
        sweep=sweep,
        group_by=("scheme",),
        metrics=("misses",),
        adapt=adapt,
        render=lambda res: adapt(res).format(),
    )


#: Builtin plan builders, keyed by the names the study CLI accepts.
PLAN_BUILDERS = {
    "table1": table1_plan,
    "table2": table2_plan,
    "fig6": fig6_plan,
    "coherence": model_coherence_plan,
    "ratecapacity": rate_capacity_plan,
    "ablation-estimator": ablation_estimator_plan,
    "ablation-freqset": ablation_freqset_plan,
    "ablation-dvs": ablation_dvs_plan,
    "ablation-feasibility": ablation_feasibility_plan,
}


def build_plan(name: str, **overrides) -> StudyPlan:
    """Build a builtin plan by name with scale overrides."""
    try:
        builder = PLAN_BUILDERS[name]
    except KeyError:
        raise SchedulingError(
            f"unknown plan {name!r}; known: {sorted(PLAN_BUILDERS)}"
        ) from None
    return builder(**overrides)

"""Typed columnar result frames for study outcomes.

A :class:`ResultFrame` is a struct-of-arrays table — one row per
executed spec, one column per spec field, meta-axis value, and metric
— replacing the per-driver bespoke result dataclasses with one
container that slices, groups, pivots, and serializes.

Determinism contract
--------------------
Every reduction is computed over values in **row order** (which is
spec order, which is sweep declaration order) using sequential
left-to-right accumulation — the same floating-point operation
sequence the legacy drivers' ``total += x`` loops performed — so a
frame-derived table is bit-identical to the hand-rolled aggregation
it replaced, and identical across worker counts and backends.
Groups appear in first-appearance row order, never sorted.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, fields as dc_fields
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..campaign.spec import ScenarioResult
from ..errors import SchedulingError

__all__ = ["ResultFrame", "GroupedFrame", "PivotTable"]


def _ordered_sum(values: Iterable[float]) -> float:
    """Sequential left-to-right float accumulation (no pairwise/numpy
    reassociation) — the determinism anchor for every aggregate."""
    total = 0.0
    for v in values:
        total += float(v)
    return total


def _make_column(values: List[Any]) -> np.ndarray:
    """Pack one column: numeric dtype when every value allows it."""
    if all(isinstance(v, bool) for v in values):
        return np.asarray(values, dtype=bool)
    if all(
        isinstance(v, int) and not isinstance(v, bool) for v in values
    ):
        return np.asarray(values, dtype=np.int64)
    if all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in values
    ):
        return np.asarray(values, dtype=float)
    col = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        col[i] = v
    return col


class ResultFrame:
    """An immutable columnar table of study results.

    Build one from campaign results with :meth:`from_results`; every
    transform returns a new frame.  Columns are numpy arrays —
    ``float64``/``int64``/``bool`` where possible, ``object``
    otherwise (names, tuples, ``None``).
    """

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        self._columns: Dict[str, np.ndarray] = dict(columns)
        sizes = {len(col) for col in self._columns.values()}
        if len(sizes) > 1:
            raise SchedulingError(
                f"ragged frame: column lengths {sorted(sizes)}"
            )

    # Construction -----------------------------------------------------
    @classmethod
    def from_results(
        cls,
        results: Sequence[ScenarioResult],
        *,
        extra: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> "ResultFrame":
        """One row per result: spec fields, then ``extra`` metadata
        (e.g. the sweep's meta axes), then metrics.

        Specs of mixed kinds are allowed; fields absent from a row's
        spec kind are ``None``.  Name collisions between the three
        column groups are an error — they would silently shadow data.
        """
        if extra is not None and len(extra) != len(results):
            raise SchedulingError(
                f"extra metadata length {len(extra)} != result count "
                f"{len(results)}"
            )
        spec_names: List[str] = []
        for r in results:
            for f in dc_fields(r.spec):
                if f.name not in spec_names:
                    spec_names.append(f.name)
        meta_names: List[str] = []
        for row in extra or ():
            for name in row:
                if name not in meta_names:
                    meta_names.append(name)
        # Metric columns are sorted: cached results round-trip their
        # metrics dict through sort_keys JSON, so insertion order is
        # not stable between fresh and cache-served runs — sorted
        # names are, keeping frames byte-identical either way.
        metric_names = sorted({name for r in results for name in r.metrics})
        clash = (set(spec_names) | set(meta_names)) & set(metric_names)
        clash |= set(spec_names) & set(meta_names)
        if clash:
            raise SchedulingError(
                f"column name collision: {sorted(clash)}"
            )
        columns: Dict[str, np.ndarray] = {}
        for name in spec_names:
            columns[name] = _make_column(
                [getattr(r.spec, name, None) for r in results]
            )
        for name in meta_names:
            columns[name] = _make_column(
                [row.get(name) for row in extra or ()]
            )
        for name in metric_names:
            columns[name] = _make_column(
                [r.metrics.get(name, math.nan) for r in results]
            )
        return cls(columns)

    # Introspection ----------------------------------------------------
    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(self._columns)

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise SchedulingError(
                f"no column {name!r}; have {list(self._columns)}"
            ) from None

    def row(self, index: int) -> Dict[str, Any]:
        return {
            name: col[index].item()
            if isinstance(col[index], np.generic)
            else col[index]
            for name, col in self._columns.items()
        }

    def to_rows(self) -> List[Dict[str, Any]]:
        return [self.row(i) for i in range(len(self))]

    def __repr__(self) -> str:
        return (
            f"ResultFrame({len(self)} rows x "
            f"{len(self._columns)} columns: {list(self._columns)})"
        )

    # Transforms -------------------------------------------------------
    def select(self, *names: str) -> "ResultFrame":
        return ResultFrame({name: self.column(name) for name in names})

    def where(self, mask: Sequence[bool]) -> "ResultFrame":
        mask_arr = np.asarray(mask, dtype=bool)
        if mask_arr.shape != (len(self),):
            raise SchedulingError(
                f"mask length {mask_arr.size} != row count {len(self)}"
            )
        return ResultFrame(
            {name: col[mask_arr] for name, col in self._columns.items()}
        )

    def filter(self, **equals) -> "ResultFrame":
        """Rows where every named column equals the given value."""
        mask = np.ones(len(self), dtype=bool)
        for name, value in equals.items():
            col = self.column(name)
            mask &= np.array(
                [col[i] == value for i in range(len(self))], dtype=bool
            )
        return self.where(mask)

    def exclude(self, **equals) -> "ResultFrame":
        """Rows where *not* every named column equals the value."""
        mask = np.ones(len(self), dtype=bool)
        for name, value in equals.items():
            col = self.column(name)
            mask &= np.array(
                [col[i] == value for i in range(len(self))], dtype=bool
            )
        return self.where(~mask)

    def with_column(
        self, name: str, values: Sequence[Any]
    ) -> "ResultFrame":
        if len(values) != len(self):
            raise SchedulingError(
                f"column {name!r} length {len(values)} != row count "
                f"{len(self)}"
            )
        columns = dict(self._columns)
        columns[name] = _make_column(list(values))
        return ResultFrame(columns)

    # Grouping ---------------------------------------------------------
    def group_by(self, *keys: str) -> "GroupedFrame":
        """Group rows by key columns, first-appearance order."""
        if not keys:
            raise SchedulingError("group_by() needs at least one key")
        key_cols = [self.column(k) for k in keys]
        order: List[Tuple] = []
        members: Dict[Tuple, List[int]] = {}
        for i in range(len(self)):
            key = tuple(
                c[i].item() if isinstance(c[i], np.generic) else c[i]
                for c in key_cols
            )
            if key not in members:
                members[key] = []
                order.append(key)
            members[key].append(i)
        return GroupedFrame(self, tuple(keys), order, members)

    def normalize(
        self,
        value: str,
        *,
        reference: Mapping[str, Any],
        within: Sequence[str],
        name: Optional[str] = None,
    ) -> "ResultFrame":
        """Add ``value / reference-row's value`` within each group.

        ``within`` names the columns identifying a group (e.g. one
        sweep point's replicates); ``reference`` picks exactly one row
        per group (e.g. ``{"scheme": "near-optimal"}``) whose value
        divides the others.  The reference value must be positive.
        """
        out_name = name if name is not None else f"{value}_rel"
        grouped = self.group_by(*within)
        vals = self.column(value)
        refs: Dict[Tuple, float] = {}
        for key in grouped.order:
            rows = grouped.members[key]
            matching = [
                i
                for i in rows
                if all(
                    self._columns[col][i] == want
                    for col, want in reference.items()
                )
            ]
            if len(matching) != 1:
                raise SchedulingError(
                    f"normalize: group {dict(zip(within, key))} has "
                    f"{len(matching)} reference rows matching "
                    f"{dict(reference)}, need exactly 1"
                )
            ref = float(vals[matching[0]])
            if ref <= 0:
                raise SchedulingError(
                    f"normalize: reference {value!r} must be positive, "
                    f"got {ref} in group {dict(zip(within, key))}"
                )
            refs[key] = ref
        normalized = []
        for key in grouped.order:
            for i in grouped.members[key]:
                normalized.append((i, float(vals[i]) / refs[key]))
        normalized.sort()
        return self.with_column(out_name, [v for _i, v in normalized])

    def mean_ci(
        self,
        value: str,
        *,
        by: Sequence[str] = (),
        confidence: float = 0.95,
    ) -> "ResultFrame":
        """Per-group mean with a Student-t confidence interval.

        Output columns: the ``by`` keys, ``n``, ``<value>`` (the
        mean), ``<value>_ci_lo`` / ``<value>_ci_hi``.  Single-row
        groups get a NaN interval.
        """
        from scipy import stats

        if by:
            grouped = self.group_by(*by)
            order, members = grouped.order, grouped.members
        else:
            order = [()]
            members = {(): list(range(len(self)))}
        vals = self.column(value)
        keys_out: Dict[str, List[Any]] = {k: [] for k in by}
        out: Dict[str, List[float]] = {
            "n": [],
            value: [],
            f"{value}_ci_lo": [],
            f"{value}_ci_hi": [],
        }
        for key in order:
            rows = members[key]
            n = len(rows)
            mean = _ordered_sum(vals[i] for i in rows) / n
            if n > 1:
                ss = _ordered_sum(
                    (float(vals[i]) - mean) ** 2 for i in rows
                )
                half = float(
                    stats.t.ppf(0.5 + confidence / 2.0, n - 1)
                ) * math.sqrt(ss / (n - 1)) / math.sqrt(n)
            else:
                half = math.nan
            for k, part in zip(by, key):
                keys_out[k].append(part)
            out["n"].append(n)
            out[value].append(mean)
            out[f"{value}_ci_lo"].append(mean - half)
            out[f"{value}_ci_hi"].append(mean + half)
        columns = {k: _make_column(v) for k, v in keys_out.items()}
        columns.update(
            {k: _make_column(v) for k, v in out.items()}
        )
        return ResultFrame(columns)

    def pivot(
        self,
        index: str,
        columns: str,
        values: str,
        *,
        agg: str = "mean",
    ) -> "PivotTable":
        """A 2-D table: one row per ``index`` value, one column per
        ``columns`` value, cells aggregating ``values`` (``"mean"``,
        ``"sum"`` or ``"first"``).  Label order is first appearance;
        empty cells are NaN."""
        if agg not in ("mean", "sum", "first"):
            raise SchedulingError(
                f"unknown pivot agg {agg!r}; known: mean, sum, first"
            )
        grouped = self.group_by(index, columns)
        row_labels: List[Any] = []
        col_labels: List[Any] = []
        for r, c in grouped.order:
            if r not in row_labels:
                row_labels.append(r)
            if c not in col_labels:
                col_labels.append(c)
        cells = np.full((len(row_labels), len(col_labels)), np.nan)
        vals = self.column(values)
        for (r, c), rows in grouped.members.items():
            if agg == "first":
                cell = float(vals[rows[0]])
            else:
                cell = _ordered_sum(vals[i] for i in rows)
                if agg == "mean":
                    cell /= len(rows)
            cells[row_labels.index(r), col_labels.index(c)] = cell
        return PivotTable(
            index=index,
            columns=columns,
            values=values,
            row_labels=tuple(row_labels),
            column_labels=tuple(col_labels),
            cells=cells,
        )

    # Serialization ----------------------------------------------------
    def to_csv(self, path: Optional[str] = None) -> str:
        """Deterministic CSV: ``repr`` floats (exact round-trip),
        JSON-encoded tuples.  Optionally also written to ``path``."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(self.column_names)
        for i in range(len(self)):
            row = []
            for name in self.column_names:
                v = self._columns[name][i]
                if isinstance(v, np.generic):
                    v = v.item()
                if isinstance(v, float):
                    row.append(repr(v))
                elif isinstance(v, tuple):
                    row.append(json.dumps(list(v)))
                elif v is None:
                    row.append("")
                else:
                    row.append(str(v))
            writer.writerow(row)
        text = buf.getvalue()
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    def to_json(self) -> Dict:
        """JSON-ready ``{"columns": {name: [values]}}`` (column order
        preserved by the dict)."""
        columns: Dict[str, List] = {}
        for name in self.column_names:
            out: List[Any] = []
            for v in self._columns[name]:
                if isinstance(v, np.generic):
                    v = v.item()
                if isinstance(v, tuple):
                    v = list(v)
                if isinstance(v, float) and math.isnan(v):
                    v = None
                out.append(v)
            columns[name] = out
        return {"columns": columns}

    @classmethod
    def from_json(cls, data: Dict) -> "ResultFrame":
        columns = {}
        for name, values in dict(data["columns"]).items():
            columns[name] = _make_column(
                [tuple(v) if isinstance(v, list) else v for v in values]
            )
        return cls(columns)

    def format(self, *, precision: int = 6) -> str:
        """A plain aligned-text rendering of the whole frame."""
        from ..analysis.tables import format_table

        rows = []
        for i in range(len(self)):
            row = []
            for name in self.column_names:
                v = self._columns[name][i]
                row.append(v.item() if isinstance(v, np.generic) else v)
            rows.append(row)
        return format_table(
            list(self.column_names), rows, precision=precision
        )


@dataclass
class GroupedFrame:
    """Rows of a frame grouped by key columns (first-appearance order).

    Aggregation methods reduce every numeric non-key column in row
    order and return a new :class:`ResultFrame` with the key columns,
    an ``n`` count column, and the aggregated columns.
    """

    frame: ResultFrame
    keys: Tuple[str, ...]
    order: List[Tuple]
    members: Dict[Tuple, List[int]]

    def _numeric_columns(self) -> List[str]:
        return [
            name
            for name in self.frame.column_names
            if name not in self.keys
            and self.frame.column(name).dtype.kind in "fiu"
        ]

    def _aggregate(self, reduce_) -> ResultFrame:
        names = self._numeric_columns()
        columns: Dict[str, List[Any]] = {k: [] for k in self.keys}
        columns["n"] = []
        for name in names:
            columns[name] = []
        for key in self.order:
            rows = self.members[key]
            for k, part in zip(self.keys, key):
                columns[k].append(part)
            columns["n"].append(len(rows))
            for name in names:
                vals = self.frame.column(name)
                columns[name].append(reduce_(vals, rows))
        return ResultFrame(
            {k: _make_column(v) for k, v in columns.items()}
        )

    def mean(self) -> ResultFrame:
        return self._aggregate(
            lambda vals, rows: _ordered_sum(vals[i] for i in rows)
            / len(rows)
        )

    def sum(self) -> ResultFrame:
        return self._aggregate(
            lambda vals, rows: _ordered_sum(vals[i] for i in rows)
        )

    def first(self) -> ResultFrame:
        return self._aggregate(lambda vals, rows: float(vals[rows[0]]))

    def series(self, value: str) -> Dict[Tuple, float]:
        """Group-key → mean-of-``value`` mapping, insertion-ordered."""
        vals = self.frame.column(value)
        return {
            key: _ordered_sum(vals[i] for i in self.members[key])
            / len(self.members[key])
            for key in self.order
        }


@dataclass(frozen=True)
class PivotTable:
    """The result of :meth:`ResultFrame.pivot`."""

    index: str
    columns: str
    values: str
    row_labels: Tuple
    column_labels: Tuple
    cells: np.ndarray

    def format(self, *, precision: int = 4) -> str:
        from ..analysis.tables import format_series

        return format_series(
            self.index,
            list(self.row_labels),
            {
                str(label): list(self.cells[:, j])
                for j, label in enumerate(self.column_labels)
            },
            title=f"{self.values} by {self.index} x {self.columns}",
            precision=precision,
        )

"""Typed result objects for the paper's tables and figures.

These are the stable, presentation-ready outcome types the builtin
:mod:`repro.api.plans` adapt their
:class:`~repro.api.frame.ResultFrame` into — and the return types of
the legacy driver shims in :mod:`repro.analysis.experiments`, where
they historically lived.  Each carries raw numbers plus a
``format()`` method printing the same rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..analysis.tables import format_series, format_table

__all__ = [
    "Table1Result",
    "Fig6Result",
    "Table2Result",
    "RateCapacityResult",
    "ModelCoherenceResult",
    "AblationResult",
]


@dataclass(frozen=True)
class Table1Result:
    """Energy normalized w.r.t. the optimal schedule, per task count."""

    sizes: Tuple[int, ...]
    random: Tuple[float, ...]
    ltf: Tuple[float, ...]
    pubs: Tuple[float, ...]
    graphs_per_size: int

    def format(self) -> str:
        rows = [
            [n, r, l, p]
            for n, r, l, p in zip(self.sizes, self.random, self.ltf, self.pubs)
        ]
        return format_table(
            ["# of tasks", "Random", "LTF", "pUBS"],
            rows,
            title=(
                "Table 1 — energy normalized w.r.t. optimal "
                f"(avg of {self.graphs_per_size} DAGs per size)"
            ),
        )


@dataclass(frozen=True)
class Fig6Result:
    graph_counts: Tuple[int, ...]
    series: Dict[str, Tuple[float, ...]]
    sets_per_point: int

    def format(self) -> str:
        return format_series(
            "# taskgraphs",
            list(self.graph_counts),
            {k: list(v) for k, v in self.series.items()},
            title=(
                "Figure 6 — energy normalized w.r.t. near-optimal "
                f"(precedence relaxed; avg of {self.sets_per_point} sets)"
            ),
        )


@dataclass(frozen=True)
class Table2Result:
    scheme_names: Tuple[str, ...]
    delivered_mah: Tuple[float, ...]
    lifetime_min: Tuple[float, ...]
    n_sets: int

    def format(self) -> str:
        rows = [
            [name, q, t]
            for name, q, t in zip(
                self.scheme_names, self.delivered_mah, self.lifetime_min
            )
        ]
        table = format_table(
            ["Scheme", "Charge (mAh)", "Lifetime (min)"],
            rows,
            title=(
                "Table 2 — battery performance at 70% utilization "
                f"(avg of {self.n_sets} taskgraph sets)"
            ),
            precision=1,
        )
        return table + "\n" + self.headline_claims()

    def ratio(self, a: str, b: str) -> float:
        """Lifetime of scheme ``a`` over scheme ``b``."""
        idx = {n: i for i, n in enumerate(self.scheme_names)}
        return self.lifetime_min[idx[a]] / self.lifetime_min[idx[b]]

    def headline_claims(self) -> str:
        """The §6 improvement percentages, recomputed from this run."""
        lines = []
        for target, label in (
            ("ccEDF", "over ccEDF"),
            ("laEDF", "over laEDF"),
            ("EDF", "over no-DVS EDF"),
        ):
            if target in self.scheme_names and "BAS-2" in self.scheme_names:
                pct = (self.ratio("BAS-2", target) - 1.0) * 100.0
                lines.append(f"BAS-2 lifetime {label}: {pct:+.1f}%")
        return "\n".join(lines)


@dataclass(frozen=True)
class RateCapacityResult:
    currents: Tuple[float, ...]
    delivered_mah: Dict[str, Tuple[float, ...]]
    max_capacity_mah: float
    available_capacity_mah: float

    def format(self) -> str:
        table = format_series(
            "I (A)",
            list(self.currents),
            {k: list(v) for k, v in self.delivered_mah.items()},
            title="Load vs delivered capacity (mAh)",
            precision=1,
        )
        return (
            table
            + f"\nextrapolated maximum capacity:   "
            f"{self.max_capacity_mah:.0f} mAh (paper: 2000)"
            + f"\nextrapolated available capacity: "
            f"{self.available_capacity_mah:.0f} mAh"
        )


@dataclass(frozen=True)
class ModelCoherenceResult:
    """Sustainable load scale per profile shape per model.

    ``margins[model][i]`` is the largest multiplier by which shape
    ``shapes[i]``'s currents can be scaled with the battery still
    completing the whole profile — the model-agnostic measure of how
    battery-friendly an execution order is (guideline 1 says the
    non-increasing permutation sustains the most).
    """

    shapes: Tuple[str, ...]
    margins: Dict[str, Tuple[float, ...]]

    def rankings_agree(self, models: Optional[Sequence[str]] = None) -> bool:
        """Do the (recovery-aware) models order the shapes identically?"""
        names = models if models is not None else [
            m for m in self.margins if m != "Peukert"
        ]
        orders = {
            tuple(np.argsort(self.margins[m])) for m in names
        }
        return len(orders) == 1

    def format(self) -> str:
        table = format_series(
            "profile",
            list(self.shapes),
            {k: list(v) for k, v in self.margins.items()},
            title=(
                "Figures 2-3 — battery models agree on load-shape "
                "friendliness (max sustainable load scale)"
            ),
            precision=4,
        )
        verdict = "yes" if self.rankings_agree() else "NO"
        return (
            table
            + f"\nkinetic/diffusion/stochastic rankings agree: {verdict}"
            + "\n(Peukert is permutation-blind: its column is flat)"
        )


@dataclass(frozen=True)
class AblationResult:
    """Generic one-factor ablation outcome."""

    title: str
    factor: str
    levels: Tuple[str, ...]
    metrics: Dict[str, Tuple[float, ...]]
    notes: str = ""

    def format(self) -> str:
        headers = [self.factor] + list(self.metrics.keys())
        rows = [
            [lvl] + [self.metrics[m][i] for m in self.metrics]
            for i, lvl in enumerate(self.levels)
        ]
        out = format_table(headers, rows, title=self.title, precision=3)
        if self.notes:
            out += "\n" + self.notes
        return out

"""Declarative sweep grids that expand to campaign spec lists.

A :class:`Sweep` describes an experiment as *axes over spec fields*
instead of hand-rolled nested loops: cartesian axes (:meth:`Sweep.grid`),
paired axes advancing together (:meth:`Sweep.zip`), conditional axes
that only apply where a predicate matches (:meth:`Sweep.conditional`),
and a declarative seeding rule (:meth:`Sweep.seed`).  Expansion is a
pure function of the declaration: points are emitted in row-major
order over the axes as declared, so the same sweep always yields the
same spec list — and therefore the same
:func:`~repro.campaign.spec.content_hash` identities, which is what
lets a grown sweep reuse the campaign cache for every unchanged point.

Axis fields name fields of the target spec dataclass
(:class:`~repro.campaign.spec.ScenarioSpec` et al.); fields starting
with ``_`` are *meta axes* — they shape the sweep (replicate counts,
display labels) and ride along into the
:class:`~repro.api.frame.ResultFrame` as columns, but are not passed
to the spec.

Everything serializes: ``Sweep.to_json()`` / ``Sweep.from_json()``
round-trip the whole declaration (conditions included), which is what
``python -m repro study run plan.json`` executes.

Example::

    sweep = (
        Sweep("scenario", n_graphs=4, battery="stochastic")
        .grid(_rep=range(20))
        .grid(scheme=["ccEDF", "laEDF", "BAS-2"])
        .conditional(
            "estimator",
            ["history", "oracle"],
            when=Condition.one_of("scheme", ["laEDF", "BAS-2"]),
        )
        .seed(mode="offset", root=0, terms={"_rep": 1})
    )
    specs = sweep.expand()
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, fields as dc_fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..campaign.spec import _SPEC_TYPES, Spec, spawn_seeds
from ..errors import SchedulingError

__all__ = ["Axis", "Condition", "SeedRule", "Sweep", "META_PREFIX"]

#: Axis names starting with this are sweep metadata, not spec fields.
META_PREFIX = "_"

#: Sentinel: a conditional axis that doesn't match leaves its field at
#: the spec's own default.
_UNSET = object()


def _as_values(values) -> Tuple:
    out = []
    for v in values:
        out.append(tuple(v) if isinstance(v, list) else v)
    if not out:
        raise SchedulingError("an axis needs at least one value")
    return tuple(out)


@dataclass(frozen=True)
class Condition:
    """A JSON-serializable predicate over already-bound axis fields."""

    field: str
    op: str  # "equals" | "in" | "prefix"
    value: Any

    _OPS = ("equals", "in", "prefix")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise SchedulingError(
                f"unknown condition op {self.op!r}; known: {self._OPS}"
            )

    # Convenience constructors -----------------------------------------
    @classmethod
    def equals(cls, field: str, value) -> "Condition":
        return cls(field, "equals", value)

    @classmethod
    def one_of(cls, field: str, values: Sequence) -> "Condition":
        return cls(field, "in", tuple(values))

    @classmethod
    def prefix(cls, field: str, prefix: str) -> "Condition":
        return cls(field, "prefix", prefix)

    # ------------------------------------------------------------------
    def matches(self, point: Dict[str, Any]) -> bool:
        if self.field not in point:
            raise SchedulingError(
                f"condition references {self.field!r}, which is not "
                "bound by any earlier axis or base field"
            )
        bound = point[self.field]
        if self.op == "equals":
            return bound == self.value
        if self.op == "in":
            return bound in self.value
        return isinstance(bound, str) and bound.startswith(str(self.value))

    def to_json(self) -> Dict:
        value = (
            list(self.value) if isinstance(self.value, tuple) else self.value
        )
        return {"field": self.field, "op": self.op, "value": value}

    @classmethod
    def from_json(cls, data: Dict) -> "Condition":
        value = data["value"]
        if isinstance(value, list):
            value = tuple(value)
        return cls(str(data["field"]), str(data["op"]), value)


@dataclass(frozen=True)
class SeedRule:
    """How expansion assigns seed fields to points.

    ``mode="spawn"``
        Point ``i`` gets ``spawn_seeds(root, n_points)[i]`` — the
        collision-resistant assignment whose prefix is stable when the
        sweep grows by appending points (grow the *outermost* axis).
    ``mode="offset"``
        Point gets ``root + sum(coeff * axis_index)`` over ``terms`` —
        stable per axis index regardless of sweep shape (the classic
        ``seed + rep`` drivers).
    ``mode="fixed"``
        Every point gets ``root``.

    ``also`` names additional spec fields receiving the same value
    (e.g. ``battery_seed``).
    """

    field: str = "seed"
    mode: str = "spawn"
    root: int = 0
    terms: Tuple[Tuple[str, int], ...] = ()
    also: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in ("spawn", "offset", "fixed"):
            raise SchedulingError(
                f"unknown seed mode {self.mode!r}; "
                "known: spawn, offset, fixed"
            )

    def to_json(self) -> Dict:
        return {
            "field": self.field,
            "mode": self.mode,
            "root": self.root,
            "terms": {k: v for k, v in self.terms},
            "also": list(self.also),
        }

    @classmethod
    def from_json(cls, data: Dict) -> "SeedRule":
        return cls(
            field=str(data.get("field", "seed")),
            mode=str(data.get("mode", "spawn")),
            root=int(data.get("root", 0)),
            terms=tuple(
                (str(k), int(v))
                for k, v in dict(data.get("terms") or {}).items()
            ),
            also=tuple(str(f) for f in data.get("also", ())),
        )


@dataclass(frozen=True)
class Axis:
    """One expansion block of a sweep.

    ``kind`` is ``"grid"`` (cartesian), ``"zip"`` (paired columns
    advancing together) or ``"conditional"`` (applies only where
    ``when`` matches; elsewhere the field takes ``otherwise``, or the
    spec default if ``otherwise`` is unset).
    """

    kind: str
    fields: Tuple[str, ...]
    columns: Tuple[Tuple, ...]
    when: Optional[Condition] = None
    otherwise: Any = _UNSET

    @property
    def size(self) -> int:
        return len(self.columns[0])

    def to_json(self) -> Dict:
        def cell(v):
            return list(v) if isinstance(v, tuple) else v

        data: Dict[str, Any] = {"type": self.kind}
        if self.kind == "zip":
            data["fields"] = list(self.fields)
            data["columns"] = [
                [cell(v) for v in col] for col in self.columns
            ]
        else:
            data["field"] = self.fields[0]
            data["values"] = [cell(v) for v in self.columns[0]]
        if self.when is not None:
            data["when"] = self.when.to_json()
        if self.otherwise is not _UNSET:
            data["otherwise"] = cell(self.otherwise)
        return data

    @classmethod
    def from_json(cls, data: Dict) -> "Axis":
        kind = str(data["type"])
        if kind == "zip":
            names = tuple(str(f) for f in data["fields"])
            columns = tuple(_as_values(col) for col in data["columns"])
        elif kind in ("grid", "conditional"):
            names = (str(data["field"]),)
            columns = (_as_values(data["values"]),)
        else:
            raise SchedulingError(f"unknown axis type {kind!r}")
        when = (
            Condition.from_json(data["when"]) if "when" in data else None
        )
        otherwise = data.get("otherwise", _UNSET)
        if isinstance(otherwise, list):
            otherwise = tuple(otherwise)
        return cls(kind, names, columns, when=when, otherwise=otherwise)


class Sweep:
    """A declarative sweep over one campaign spec kind.

    Parameters
    ----------
    kind:
        Spec kind: ``"scenario"``, ``"oneshot"``, ``"survival"`` or
        ``"constantload"``.
    **base:
        Fields shared by every point (overridable by axes).

    Builder methods (:meth:`grid`, :meth:`zip`, :meth:`conditional`,
    :meth:`seed`) mutate and return ``self`` for chaining.
    """

    def __init__(self, kind: str = "scenario", **base) -> None:
        if kind not in _SPEC_TYPES:
            raise SchedulingError(
                f"unknown spec kind {kind!r}; known: "
                f"{sorted(_SPEC_TYPES)}"
            )
        self.kind = kind
        self.base: Dict[str, Any] = {}
        for name, value in base.items():
            self._check_field(name)
            self.base[name] = tuple(value) if isinstance(value, list) \
                else value
        self.axes: List[Axis] = []
        self.seed_rule: Optional[SeedRule] = None

    # ------------------------------------------------------------------
    def _spec_fields(self) -> Tuple[str, ...]:
        return tuple(f.name for f in dc_fields(_SPEC_TYPES[self.kind]))

    def _check_field(self, name: str) -> None:
        if name.startswith(META_PREFIX):
            return
        if name not in self._spec_fields():
            raise SchedulingError(
                f"{name!r} is not a field of {self.kind!r} specs "
                f"(valid: {sorted(self._spec_fields())}; prefix with "
                f"'{META_PREFIX}' for a meta axis)"
            )

    def _check_new_axis(self, names: Sequence[str]) -> None:
        taken = {f for axis in self.axes for f in axis.fields}
        for name in names:
            self._check_field(name)
            if name in taken:
                raise SchedulingError(f"axis {name!r} declared twice")

    # Builder ----------------------------------------------------------
    def grid(self, **axes) -> "Sweep":
        """Add one cartesian axis per keyword, in declaration order
        (later axes vary fastest)."""
        if not axes:
            raise SchedulingError("grid() needs at least one axis")
        self._check_new_axis(tuple(axes))
        for name, values in axes.items():
            self.axes.append(
                Axis("grid", (name,), (_as_values(values),))
            )
        return self

    def zip(self, **axes) -> "Sweep":
        """Add one *paired* block: all keywords advance together (all
        value lists must have equal length)."""
        if len(axes) < 2:
            raise SchedulingError("zip() needs at least two axes")
        self._check_new_axis(tuple(axes))
        columns = tuple(_as_values(v) for v in axes.values())
        sizes = {len(c) for c in columns}
        if len(sizes) != 1:
            raise SchedulingError(
                f"zip() axes must have equal lengths, got "
                f"{[len(c) for c in columns]}"
            )
        self.axes.append(Axis("zip", tuple(axes), columns))
        return self

    def conditional(
        self,
        field: str,
        values: Sequence,
        *,
        when: Condition,
        otherwise: Any = _UNSET,
    ) -> "Sweep":
        """Add an axis that only applies where ``when`` matches.

        Non-matching points take ``otherwise`` for ``field`` (or the
        spec's own default when ``otherwise`` is omitted) and are
        *not* multiplied — e.g. an estimator axis that only exists for
        estimate-driven schemes.
        """
        self._check_new_axis((field,))
        self.axes.append(
            Axis(
                "conditional",
                (field,),
                (_as_values(values),),
                when=when,
                otherwise=otherwise,
            )
        )
        return self

    def seed(
        self,
        *,
        field: str = "seed",
        mode: str = "spawn",
        root: int = 0,
        terms: Optional[Dict[str, int]] = None,
        also: Sequence[str] = (),
    ) -> "Sweep":
        """Declare how seeds are assigned (see :class:`SeedRule`)."""
        self._check_field(field)
        for extra in also:
            self._check_field(extra)
        for axis_name in (terms or {}):
            if not any(
                axis_name in axis.fields for axis in self.axes
            ):
                raise SchedulingError(
                    f"seed term references unknown axis {axis_name!r}"
                )
        self.seed_rule = SeedRule(
            field=field,
            mode=mode,
            root=int(root),
            terms=tuple((k, int(v)) for k, v in (terms or {}).items()),
            also=tuple(also),
        )
        return self

    # Expansion --------------------------------------------------------
    def points(self) -> List[Tuple[Dict[str, Any], Dict[str, int]]]:
        """Expand to ``(fields, axis_indices)`` pairs, row-major over
        the axes as declared.  Seeding is applied last."""
        points: List[Tuple[Dict[str, Any], Dict[str, int]]] = [
            (dict(self.base), {})
        ]
        for axis in self.axes:
            new: List[Tuple[Dict[str, Any], Dict[str, int]]] = []
            for bound, indices in points:
                if axis.when is not None and not axis.when.matches(bound):
                    skipped = dict(bound)
                    if axis.otherwise is not _UNSET:
                        skipped[axis.fields[0]] = axis.otherwise
                    new.append((skipped, indices))
                    continue
                for vi in range(axis.size):
                    fields_ = dict(bound)
                    for name, column in zip(axis.fields, axis.columns):
                        fields_[name] = column[vi]
                    new.append(
                        (fields_, {**indices, **{
                            name: vi for name in axis.fields
                        }})
                    )
            points = new
        self._apply_seeds(points)
        return points

    def _apply_seeds(
        self, points: List[Tuple[Dict[str, Any], Dict[str, int]]]
    ) -> None:
        rule = self.seed_rule
        if rule is None:
            return
        if rule.mode == "spawn":
            values: Sequence[int] = spawn_seeds(rule.root, len(points))
        elif rule.mode == "offset":
            values = [
                rule.root
                # repro: noqa[DET004] -- rule.terms is a frozen plan
                # tuple; addition order is identical on every run
                + sum(
                    coeff * indices.get(axis_name, 0)
                    for axis_name, coeff in rule.terms
                )
                for _fields, indices in points
            ]
        else:  # fixed
            values = [rule.root] * len(points)
        for (fields_, _indices), value in zip(points, values):
            fields_[rule.field] = int(value)
            for extra in rule.also:
                fields_[extra] = int(value)

    def expand(self) -> List[Spec]:
        """The sweep's spec list, in deterministic point order."""
        return self.expand_with_meta()[0]

    def expand_with_meta(
        self,
    ) -> Tuple[List[Spec], List[Dict[str, Any]]]:
        """Specs plus one metadata dict per point (the ``_``-prefixed
        meta-axis values) — the extra columns of a result frame."""
        cls = _SPEC_TYPES[self.kind]
        specs: List[Spec] = []
        meta: List[Dict[str, Any]] = []
        for fields_, _indices in self.points():
            spec_kwargs = {
                k: v
                for k, v in fields_.items()
                if not k.startswith(META_PREFIX)
            }
            try:
                specs.append(cls(**spec_kwargs))
            except TypeError as exc:
                raise SchedulingError(
                    f"cannot build {self.kind!r} spec from "
                    f"{sorted(spec_kwargs)}: {exc}"
                ) from None
            meta.append(
                {
                    k: v
                    for k, v in fields_.items()
                    if k.startswith(META_PREFIX)
                }
            )
        return specs, meta

    def __len__(self) -> int:
        return len(self.points())

    # Serialization ----------------------------------------------------
    def to_json(self) -> Dict:
        data: Dict[str, Any] = {
            "kind": self.kind,
            "base": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.base.items()
            },
            "axes": [axis.to_json() for axis in self.axes],
        }
        if self.seed_rule is not None:
            data["seed"] = self.seed_rule.to_json()
        return data

    @classmethod
    def from_json(cls, data: Dict) -> "Sweep":
        sweep = cls(str(data.get("kind", "scenario")),
                    **dict(data.get("base") or {}))
        for axis_data in data.get("axes", ()):
            axis = Axis.from_json(axis_data)
            sweep._check_new_axis(axis.fields)
            sweep.axes.append(axis)
        if "seed" in data:
            rule = SeedRule.from_json(data["seed"])
            sweep._check_field(rule.field)
            sweep.seed_rule = rule
        return sweep

    def copy(self) -> "Sweep":
        return copy.deepcopy(self)

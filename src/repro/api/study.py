"""Studies: a sweep + post-processing + presentation, run as one unit.

A :class:`StudyPlan` is the declarative description of a whole
experiment: the :class:`~repro.api.sweep.Sweep` that expands to
campaign specs, a pipeline of frame operations (``post``), and how to
summarize (``group_by`` / ``metrics``).  :class:`Study` executes a
plan on any :class:`~repro.campaign.growth.SpecRunner` — the local
multiprocessing runner, a cached runner, or a distributed fleet — and
returns a :class:`StudyResult` holding the typed
:class:`~repro.api.frame.ResultFrame` plus campaign telemetry.

Plans serialize: :meth:`StudyPlan.to_json` / :func:`load_plan` power
``python -m repro study run plan.json``.  The builtin paper plans in
:mod:`repro.api.plans` additionally carry code-only ``render`` /
``adapt`` hooks reproducing the legacy drivers' exact output (those
hooks are dropped by serialization; a JSON plan renders its summary
frame generically).

Post-operation vocabulary (each a JSON-able dict):

``{"op": "normalize", "value": ..., "reference": {...},
"within": [...], "name": ...}``
    :meth:`ResultFrame.normalize` — per-group reference division.
``{"op": "filter", "where": {...}}`` / ``{"op": "exclude",
"where": {...}}``
    Keep / drop rows matching the given column values.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..campaign.cache import ResultCache
from ..campaign.growth import SpecRunner
from ..campaign.runner import CampaignResult, CampaignRunner
from ..errors import SchedulingError
from .frame import ResultFrame
from .sweep import Sweep

__all__ = ["Study", "StudyPlan", "StudyResult", "load_plan"]

#: Bumped on incompatible plan-file format changes.
PLAN_VERSION = 1


def _apply_post(frame: ResultFrame, ops) -> ResultFrame:
    for op in ops:
        kind = op.get("op")
        if kind == "normalize":
            frame = frame.normalize(
                str(op["value"]),
                reference=dict(op["reference"]),
                within=tuple(op["within"]),
                name=op.get("name"),
            )
        elif kind == "filter":
            frame = frame.filter(**dict(op["where"]))
        elif kind == "exclude":
            frame = frame.exclude(**dict(op["where"]))
        else:
            raise SchedulingError(
                f"unknown post op {kind!r}; known: normalize, filter, "
                "exclude"
            )
    return frame


@dataclass
class StudyPlan:
    """A complete, serializable experiment description.

    Attributes
    ----------
    name:
        Identifier (also the default report title).
    sweep:
        The declarative grid expanding to campaign specs.
    description:
        One human sentence about what the study shows.
    post:
        Frame-operation pipeline applied to the raw result frame (see
        module docstring for the vocabulary).
    group_by / metrics:
        How :meth:`StudyResult.summary` aggregates: group keys and the
        metric columns worth reporting (empty = all numeric).
    render / adapt:
        Code-only hooks: ``render(result) -> str`` overrides the
        generic report; ``adapt(result)`` converts to a legacy result
        dataclass.  Not serialized.
    """

    name: str
    sweep: Sweep
    description: str = ""
    post: Tuple[Dict[str, Any], ...] = ()
    group_by: Tuple[str, ...] = ()
    metrics: Tuple[str, ...] = ()
    render: Optional[Callable[["StudyResult"], str]] = None
    adapt: Optional[Callable[["StudyResult"], Any]] = None

    def __post_init__(self) -> None:
        self.post = tuple(self.post)
        self.group_by = tuple(self.group_by)
        self.metrics = tuple(self.metrics)

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        runner: Optional[SpecRunner] = None,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
    ) -> "StudyResult":
        """Shorthand for ``Study(plan, ...).run()``."""
        return Study(
            self, runner=runner, workers=workers, cache=cache
        ).run()

    # Serialization ----------------------------------------------------
    def to_json(self) -> Dict:
        """The plan as a JSON-ready dict (``render``/``adapt`` hooks
        are code and are dropped)."""
        return {
            "version": PLAN_VERSION,
            "name": self.name,
            "description": self.description,
            "sweep": self.sweep.to_json(),
            "post": [dict(op) for op in self.post],
            "group_by": list(self.group_by),
            "metrics": list(self.metrics),
        }

    @classmethod
    def from_json(cls, data: Dict) -> "StudyPlan":
        version = int(data.get("version", PLAN_VERSION))
        if version != PLAN_VERSION:
            raise SchedulingError(
                f"plan version {version} unsupported (this build "
                f"speaks {PLAN_VERSION})"
            )
        return cls(
            name=str(data.get("name", "study")),
            sweep=Sweep.from_json(data["sweep"]),
            description=str(data.get("description", "")),
            post=tuple(dict(op) for op in data.get("post", ())),
            group_by=tuple(str(k) for k in data.get("group_by", ())),
            metrics=tuple(str(m) for m in data.get("metrics", ())),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=False) + "\n"
        )


def load_plan(path: Union[str, Path]) -> StudyPlan:
    """Load a plan file written by :meth:`StudyPlan.save`."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise SchedulingError(f"cannot read plan {path}: {exc}") from exc
    except ValueError as exc:
        raise SchedulingError(
            f"plan {path} is not valid JSON: {exc}"
        ) from exc
    return StudyPlan.from_json(data)


@dataclass
class StudyResult:
    """A finished study: typed frame + campaign execution telemetry."""

    plan: StudyPlan
    frame: ResultFrame
    campaign: CampaignResult

    def summary(self) -> ResultFrame:
        """The plan's aggregate view: group means over ``group_by``
        (restricted to ``metrics`` when named), else the full frame."""
        if not self.plan.group_by:
            return self.frame
        means = self.frame.group_by(*self.plan.group_by).mean()
        if self.plan.metrics:
            keep = (
                list(self.plan.group_by)
                + ["n"]
                + [
                    m
                    for m in self.plan.metrics
                    if m in means.column_names
                ]
            )
            means = means.select(*keep)
        return means

    def adapted(self):
        """The legacy result dataclass, for plans that carry an
        adapter (the builtin paper plans do)."""
        if self.plan.adapt is None:
            raise SchedulingError(
                f"plan {self.plan.name!r} has no legacy adapter"
            )
        return self.plan.adapt(self)

    def format(self) -> str:
        """The study report: the plan's renderer if present, else a
        generic summary table."""
        if self.plan.render is not None:
            return self.plan.render(self)
        title = self.plan.name
        if self.plan.description:
            title += f" — {self.plan.description}"
        return f"{title}\n{self.summary().format()}"


class Study:
    """Executes a :class:`StudyPlan` on a campaign runner.

    Parameters
    ----------
    plan:
        The declarative study description.
    runner:
        Any :class:`~repro.campaign.growth.SpecRunner` (explicit
        runner wins over ``workers``/``cache``) — results are
        bit-identical across runners and worker counts.
    workers:
        Pool size for the default local runner.
    cache:
        Optional result cache for the default local runner.
    max_retries / spec_timeout / on_error:
        Fault-containment knobs for the default local runner (see
        :class:`~repro.campaign.runner.CampaignRunner`); ignored when
        an explicit ``runner`` is supplied (configure that runner
        directly instead).
    """

    def __init__(
        self,
        plan: StudyPlan,
        *,
        runner: Optional[SpecRunner] = None,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        max_retries: int = 0,
        spec_timeout: Optional[float] = None,
        on_error: str = "raise",
    ) -> None:
        self.plan = plan
        self.runner = (
            runner
            if runner is not None
            else CampaignRunner(
                workers,
                cache=cache,
                max_retries=max_retries,
                spec_timeout=spec_timeout,
                on_error=on_error,
            )
        )

    def run(self) -> StudyResult:
        """Expand the sweep, execute, build the frame, apply post ops."""
        specs, meta = self.plan.sweep.expand_with_meta()
        if not specs:
            raise SchedulingError(
                f"plan {self.plan.name!r} expands to zero specs"
            )
        campaign = self.runner.run(specs)
        frame = ResultFrame.from_results(campaign.results, extra=meta)
        frame = _apply_post(frame, self.plan.post)
        return StudyResult(plan=self.plan, frame=frame, campaign=campaign)

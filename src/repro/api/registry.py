"""Public plugin registry: every axis value a sweep can name.

This is the promoted, public face of
:mod:`repro.campaign.registry`.  Four axis kinds exist — ``scheme``,
``battery``, ``processor``, ``estimator`` — and three ways to extend
them:

**Decorator registration** (the normal path)::

    from repro.api import register_scheme

    @register_scheme("myBAS")
    def build_mybas(estimator, *, granularity="node"):
        return make_scheme("myBAS", dvs=LaEDF,
                           priority=lambda: PUBS(estimator()),
                           ready_list=ALL_RELEASED)

The decorated function must live at module top level in importable
code: registration is recorded *declaratively* (import path +
kwargs), so it serializes into the plugin snapshot that
:class:`~repro.campaign.runner.CampaignRunner` replays in every pool
worker (any start method, including ``spawn``) and the distributed
runner ships to spawned fleets via ``$REPRO_PLUGINS`` — lifting the
old fork-only limitation on custom entries.

**Explicit declarative registration** (no decorator)::

    register_scheme("myBAS", "mypkg.schemes:build_mybas",
                    granularity="node")

**Entry-point discovery**: packages exposing a ``repro.plugins``
entry point are picked up by :func:`load_entry_points` — each entry
resolves to either a zero-argument callable (which performs its own
registrations) or an iterable of plugin records.

Passing a non-string callable as the second argument still performs
live-object registration (process-local; fork-only in pools), exactly
like the legacy ``repro.campaign.registry`` functions.
"""

from __future__ import annotations

from typing import Callable, Union

from ..campaign import registry as _backend
from ..campaign.registry import (  # noqa: F401  (public re-exports)
    NEAR_OPTIMAL,
    PLUGIN_KINDS,
    PLUGINS_ENV,
    PluginSpec,
    install_env_plugins,
    install_plugins,
    known_names,
    known_schemes,
    plugin_snapshot,
    resolve_battery,
    resolve_estimator,
    resolve_processor,
    unregister,
)
from ..errors import SchedulingError

__all__ = [
    "NEAR_OPTIMAL",
    "PLUGIN_KINDS",
    "PLUGINS_ENV",
    "PluginSpec",
    "install_env_plugins",
    "install_plugins",
    "known_names",
    "known_schemes",
    "load_entry_points",
    "plugin_snapshot",
    "register_battery",
    "register_estimator",
    "register_processor",
    "register_scheme",
    "resolve_battery",
    "resolve_estimator",
    "resolve_processor",
    "unregister",
]

#: Entry-point group scanned by :func:`load_entry_points`.
ENTRY_POINT_GROUP = "repro.plugins"

_LIVE_REGISTER = {
    "scheme": _backend.register_scheme,
    "battery": _backend.register_battery,
    "processor": _backend.register_processor,
    "estimator": _backend.register_estimator,
}


def _factory_path(fn: Callable) -> str:
    qualname = getattr(fn, "__qualname__", fn.__name__)
    if "." in qualname or "<locals>" in qualname:
        raise SchedulingError(
            f"plugin factory {qualname!r} must be a module-level "
            "function (so worker processes can import it); got a "
            "nested or method object"
        )
    return f"{fn.__module__}:{qualname}"


def _register(
    kind: str,
    name: str,
    factory: Union[str, Callable, None],
    **kwargs,
):
    """Shared implementation behind the four ``register_*`` fronts."""
    if factory is None:
        # Decorator form: @register_scheme("name", **kwargs)
        def decorate(fn: Callable) -> Callable:
            _backend.register_plugin(
                kind, name, _factory_path(fn), **kwargs
            )
            return fn

        return decorate
    if isinstance(factory, str):
        return _backend.register_plugin(kind, name, factory, **kwargs)
    if callable(factory):
        if kwargs:
            raise SchedulingError(
                "kwargs are only supported for declarative (import "
                "path / decorator) registration — bind them into "
                "your callable instead"
            )
        return _LIVE_REGISTER[kind](name, factory)
    raise SchedulingError(
        f"factory must be an import path, a callable, or omitted "
        f"(decorator form); got {type(factory).__name__}"
    )


def register_scheme(
    name: str,
    factory: Union[str, Callable, None] = None,
    **kwargs,
):
    """Register a scheme under ``name``.

    Declarative forms — ``@register_scheme("x")`` on a module-level
    ``(estimator_factory, **kwargs) -> Scheme`` function, or
    ``register_scheme("x", "pkg.mod:builder", **kwargs)`` — are
    spawn-safe and survive worker-process boundaries.  Passing a live
    callable registers process-locally (legacy behaviour).
    """
    return _register("scheme", name, factory, **kwargs)


def register_battery(
    name: str,
    factory: Union[str, Callable, None] = None,
    **kwargs,
):
    """Register a battery factory ``(seed, **kwargs) -> BatteryModel``
    under ``name`` (same three forms as :func:`register_scheme`)."""
    return _register("battery", name, factory, **kwargs)


def register_processor(
    name: str,
    factory: Union[str, Callable, None] = None,
    **kwargs,
):
    """Register a processor factory ``(**kwargs) -> Processor`` under
    ``name`` (same three forms as :func:`register_scheme`)."""
    return _register("processor", name, factory, **kwargs)


def register_estimator(
    name: str,
    factory: Union[str, Callable, None] = None,
    **kwargs,
):
    """Register an estimator factory ``(**kwargs) -> Estimator`` under
    ``name`` (same three forms as :func:`register_scheme`)."""
    return _register("estimator", name, factory, **kwargs)


def load_entry_points(group: str = ENTRY_POINT_GROUP) -> int:
    """Discover and install plugins advertised by installed packages.

    Each entry point in ``group`` must resolve to a zero-argument
    callable (invoked; it registers whatever it wants) or an iterable
    of plugin records (fed to :func:`install_plugins`).  Returns the
    number of entry points processed.
    """
    from importlib import metadata

    processed = 0
    for ep in metadata.entry_points(group=group):
        obj = ep.load()
        if callable(obj):
            obj()
        else:
            install_plugins([dict(record) for record in obj])
        processed += 1
    return processed

"""``repro.api`` — the stable public API for expressing experiments.

This package is the composable face of the whole reproduction: every
experiment — the paper's seven tables/figures, the ablations, and
anything you invent — is one :class:`StudyPlan` built from three
orthogonal pieces:

**Sweeps** (:mod:`repro.api.sweep`)
    Declare axes over spec fields instead of writing loops:
    cartesian ``grid``, paired ``zip``, ``conditional`` axes gated by
    a predicate, and a declarative seed rule (``spawn`` /
    ``offset`` / ``fixed``).  A sweep expands deterministically to
    the campaign-engine spec list, so sequential, pooled, and
    distributed execution are bit-identical and growing an axis
    reuses the content-hash result cache for every unchanged point.

**Result frames** (:mod:`repro.api.frame`)
    ``Study.run`` returns a typed columnar :class:`ResultFrame`
    (struct-of-arrays: spec fields, meta axes, metrics) with
    deterministic ``group_by`` / ``pivot`` / ``mean_ci`` /
    ``normalize`` / ``to_csv`` / ``to_json`` — every reduction runs
    in row order, replacing the per-driver bespoke result dataclasses
    with one container that is bit-identical to the hand-rolled
    aggregations it superseded.

**The registry** (:mod:`repro.api.registry`)
    Axis values are names resolved through the plugin registry.
    ``@register_scheme("myBAS")`` (and ``register_battery`` /
    ``register_processor`` / ``register_estimator``) records entries
    *declaratively* — import path + kwargs — so custom entries
    serialize across process boundaries and work under spawn-started
    pools and distributed fleets; ``load_entry_points`` discovers
    plugins advertised by installed packages.

Quick start::

    from repro.api import Study, StudyPlan, Sweep

    plan = StudyPlan(
        name="my-sweep",
        sweep=(
            Sweep("scenario", n_graphs=4, battery="stochastic")
            .grid(_rep=range(10))
            .grid(scheme=["ccEDF", "BAS-2"])
            .seed(mode="offset", root=0, terms={"_rep": 1})
        ),
        group_by=("scheme",),
        metrics=("lifetime_min", "delivered_mah"),
    )
    result = Study(plan, workers=4).run()
    print(result.format())                  # grouped summary
    result.frame.to_csv("sweep.csv")        # full typed frame

The paper's experiments ship as builtin plans
(:data:`repro.api.plans.PLAN_BUILDERS`; e.g.
``plans.table2_plan(n_sets=100)``), runnable from the CLI too:
``python -m repro study run table2``, ``python -m repro study run
plan.json``, ``python -m repro study axes``.  Plans serialize with
``StudyPlan.to_json``/``save`` and reload with :func:`load_plan`.
"""

from .frame import GroupedFrame, PivotTable, ResultFrame
from .registry import (
    NEAR_OPTIMAL,
    known_names,
    known_schemes,
    load_entry_points,
    register_battery,
    register_estimator,
    register_processor,
    register_scheme,
    unregister,
)
from .results import (
    AblationResult,
    Fig6Result,
    ModelCoherenceResult,
    RateCapacityResult,
    Table1Result,
    Table2Result,
)
from .study import Study, StudyPlan, StudyResult, load_plan
from .sweep import Axis, Condition, SeedRule, Sweep
from . import plans

__all__ = [
    "AblationResult",
    "Axis",
    "Condition",
    "Fig6Result",
    "GroupedFrame",
    "ModelCoherenceResult",
    "NEAR_OPTIMAL",
    "PivotTable",
    "RateCapacityResult",
    "ResultFrame",
    "SeedRule",
    "Study",
    "StudyPlan",
    "StudyResult",
    "Sweep",
    "Table1Result",
    "Table2Result",
    "known_names",
    "known_schemes",
    "load_entry_points",
    "load_plan",
    "plans",
    "register_battery",
    "register_estimator",
    "register_processor",
    "register_scheme",
    "unregister",
]

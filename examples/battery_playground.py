#!/usr/bin/env python
"""Battery playground: see the effects the scheduling guidelines exploit.

Three quick demonstrations on the calibrated AAA NiMH cell:

1. **Rate-capacity effect** — the gentler the constant load, the more
   of the 2000 mAh maximum the cell delivers (the curve whose
   extrapolated ends define the paper's maximum and available
   capacity).
2. **Recovery effect** — idle gaps let bound charge migrate back to
   the available well: a pulsed load outlives the equivalent
   continuous one.
3. **Guideline 1** — among permutations of the same workload, the
   non-increasing current order sustains the largest load scaling, and
   KiBaM, the diffusion model and the stochastic model all agree
   (Figures 2-3 of the paper), while Peukert's law — no recovery —
   can't tell the orders apart.

Run:  python examples/battery_playground.py
"""

import numpy as np

from repro import CurrentProfile, paper_cell_kibam
from repro.analysis.experiments import model_coherence
from repro.battery import sweep_rate_capacity


def rate_capacity_demo() -> None:
    print("1. rate-capacity effect (constant loads)")
    cell = paper_cell_kibam()
    curve = sweep_rate_capacity(cell, [0.2, 0.5, 1.0, 2.0, 4.0])
    for current, mah, minutes in curve.rows():
        bar = "#" * int(mah / 50)
        print(f"   {current:4.1f} A  {mah:7.1f} mAh  {minutes:7.1f} min  {bar}")
    print()


def recovery_demo() -> None:
    print("2. recovery effect (same 1.4 A average)")
    cell = paper_cell_kibam()
    continuous = cell.run_profile([60.0], [1.4], repeat=None)
    pulsed = cell.run_profile([30.0, 30.0], [2.8, 0.0], repeat=None)
    print(
        f"   continuous 1.4 A          : "
        f"{continuous.delivered_mah:7.1f} mAh in "
        f"{continuous.lifetime_minutes:6.1f} min"
    )
    print(
        f"   pulsed 2.8 A / rest (50%) : "
        f"{pulsed.delivered_mah:7.1f} mAh in "
        f"{pulsed.lifetime_minutes:6.1f} min"
    )
    print("   (the battery recovers during the rest slots)\n")


def guideline_demo() -> None:
    print("3. guideline 1 — non-increasing order sustains the most load")
    result = model_coherence()
    header = "   " + "profile".ljust(12) + "".join(
        m.rjust(12) for m in result.margins
    )
    print(header)
    for i, shape in enumerate(result.shapes):
        row = "   " + shape.ljust(12) + "".join(
            f"{result.margins[m][i]:12.4f}" for m in result.margins
        )
        print(row)
    agree = "agree" if result.rankings_agree() else "DISAGREE"
    print(f"   recovery-aware models {agree}; Peukert is order-blind\n")


def main() -> None:
    rate_capacity_demo()
    recovery_demo()
    guideline_demo()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Domain scenario: a handheld multimedia player.

The paper's introduction motivates battery-aware scheduling with
"continuously increasing functionality ... integrated with handheld
devices".  This example models one: a portable player decoding audio
and video while syncing e-mail in the background — three periodic task
graphs with real precedence structure:

* ``video``  (25 fps, 40 ms period): parse -> {decode_y, decode_uv} ->
  filter -> render, a fork-join pipeline whose decode stages vary a lot
  with scene complexity (actuals 20-100 % of WCET);
* ``audio``  (100 Hz, 10 ms period): demux -> decode -> mix, a chain
  with stable demand (actuals 70-90 %);
* ``sync``   (1 Hz, 1 s period): poll -> {parse_headers, fetch_body} ->
  store, bursty background work.

We ask the question a product engineer would: how much *playback time*
does battery-aware scheduling buy on one AAA NiMH cell?

Run:  python examples/multimedia_player.py
"""

from repro import (
    PeriodicTaskGraph,
    TaskGraph,
    TaskGraphSet,
    TaskNode,
    evaluate_lifetime,
    paper_cell_kibam,
    paper_processor,
    paper_schemes,
    run_scheme,
)
from repro.workloads import UniformActuals


def video_graph(scale: float) -> TaskGraph:
    return TaskGraph(
        "video",
        [
            TaskNode("parse", 2.0 * scale),
            TaskNode("decode_y", 8.0 * scale),
            TaskNode("decode_uv", 6.0 * scale),
            TaskNode("filter", 4.0 * scale),
            TaskNode("render", 2.0 * scale),
        ],
        [
            ("parse", "decode_y"),
            ("parse", "decode_uv"),
            ("decode_y", "filter"),
            ("decode_uv", "filter"),
            ("filter", "render"),
        ],
    )


def audio_graph(scale: float) -> TaskGraph:
    return TaskGraph(
        "audio",
        [
            TaskNode("demux", 0.8 * scale),
            TaskNode("decode", 2.4 * scale),
            TaskNode("mix", 0.8 * scale),
        ],
        [("demux", "decode"), ("decode", "mix")],
    )


def sync_graph(scale: float) -> TaskGraph:
    return TaskGraph(
        "sync",
        [
            TaskNode("poll", 30.0 * scale),
            TaskNode("parse_headers", 60.0 * scale),
            TaskNode("fetch_body", 90.0 * scale),
            TaskNode("store", 40.0 * scale),
        ],
        [
            ("poll", "parse_headers"),
            ("poll", "fetch_body"),
            ("parse_headers", "store"),
            ("fetch_body", "store"),
        ],
    )


class MixedActuals:
    """Per-graph actual-computation behaviour (video varies, audio is
    steady, sync is bursty)."""

    def __init__(self, seed: int = 0) -> None:
        self._video = UniformActuals(0.2, 1.0, seed)
        self._audio = UniformActuals(0.7, 0.9, seed + 1)
        self._sync = UniformActuals(0.3, 1.0, seed + 2)

    def __call__(self, graph: str, node: str, job: int, wc: float) -> float:
        provider = {
            "video": self._video, "audio": self._audio, "sync": self._sync
        }[graph]
        return provider(graph, node, job, wc)


def main() -> None:
    # WCETs in seconds-at-fmax; scaled so the set lands at 70 % worst-
    # case utilization (periods: 40 ms video, 10 ms audio, 1 s sync).
    raw = TaskGraphSet(
        [
            PeriodicTaskGraph(video_graph(1e-3), 0.040),
            PeriodicTaskGraph(audio_graph(1e-3), 0.010),
            PeriodicTaskGraph(sync_graph(1e-3), 1.000),
        ]
    )
    # Scale WCETs (not periods!) to the target utilization: frame rates
    # stay physical and the hyperperiod stays at 1 s.
    task_set = raw.scaled_wcets_to_utilization(0.7)
    actuals = MixedActuals(seed=7)
    processor = paper_processor()
    cell = paper_cell_kibam()
    horizon = task_set.hyperperiod()

    print("handheld player workload")
    for p in task_set:
        print(
            f"  {p.name:6s} period {p.period*1e3:7.1f} ms  "
            f"{len(p.graph)} tasks  u={p.utilization:.3f}"
        )
    print(f"  total worst-case utilization: {task_set.utilization:.2f}\n")

    frames_per_s = 1.0 / task_set.by_name("video").period
    print(f"{'scheme':8s} {'lifetime (min)':>15s} {'frames decoded':>15s}")
    results = {}
    for scheme in paper_schemes():
        res = run_scheme(scheme, task_set, processor, actuals, horizon)
        assert not res.misses
        life = evaluate_lifetime(res, cell)
        frames = life.lifetime_minutes * 60 * frames_per_s
        results[scheme.name] = life.lifetime_minutes
        print(f"{scheme.name:8s} {life.lifetime_minutes:15.1f} {frames:15.0f}")

    gain = results["BAS-2"] / results["EDF"] - 1
    print(
        f"\nBAS-2 plays {gain:+.0%} longer than plain EDF on the same "
        f"cell — every frame\nstill rendered on deadline."
    )


if __name__ == "__main__":
    main()

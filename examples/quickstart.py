#!/usr/bin/env python
"""Quickstart: schedule a random periodic task-graph set five ways and
compare battery lifetimes.

This is the library's 60-second tour: build a workload at the paper's
operating point (70 % utilization, actuals 20-100 % of WCET), run the
five Table 2 schemes on the paper's DVS processor, and tile each
execution's current profile through the calibrated AAA NiMH cell until
it dies.

Run:  python examples/quickstart.py
"""

from repro import (
    UniformActuals,
    evaluate_lifetime,
    paper_cell_stochastic,
    paper_processor,
    paper_schemes,
    paper_task_set,
    run_scheme,
)


def main() -> None:
    seed = 42
    task_set = paper_task_set(4, utilization=0.7, seed=seed)
    actuals = UniformActuals(low=0.2, high=1.0, seed=seed)
    processor = paper_processor()
    horizon = task_set.hyperperiod()

    print(f"workload: {task_set}")
    print(f"simulating one hyperperiod ({horizon:.0f} s) per scheme\n")
    print(f"{'scheme':8s} {'energy (J)':>11s} {'mean I (A)':>11s} "
          f"{'charge (mAh)':>13s} {'lifetime (min)':>15s}")

    for scheme in paper_schemes():
        result = run_scheme(scheme, task_set, processor, actuals, horizon)
        assert not result.misses, "the methodology guarantees deadlines"
        cell = paper_cell_stochastic(seed=seed)
        life = evaluate_lifetime(result, cell, rebin=1.0)
        print(
            f"{scheme.name:8s} {result.energy:11.2f} "
            f"{result.mean_current:11.3f} {life.delivered_mah:13.1f} "
            f"{life.lifetime_minutes:15.1f}"
        )

    print(
        "\nBattery-aware scheduling (BAS) extends lifetime by running "
        "slower, smoother,\nlocally non-increasing current profiles — "
        "the battery's recovery effect turns\nthat into extra "
        "extractable charge."
    )


if __name__ == "__main__":
    main()

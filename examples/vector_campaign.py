#!/usr/bin/env python
"""The struct-of-arrays vector engine on a 256-scenario sweep.

A campaign of many small simulations is the repo's hot loop: Table 2
runs hundreds of scenarios per scheme.  This example times the same
EDF/ccEDF sweep through the two `ScenarioBatch` engines —

* ``engine="scalar"``: every scenario through its own
  ``Simulator.run(fast=True)`` event loop;
* ``engine="vector"``: all scenarios advanced lock-step as
  struct-of-arrays numpy state (`repro.sim.vector.VectorEngine`) —

then proves the point of the design: the outcomes are *bit-identical*,
the vector engine is just faster.  It also shows the per-scenario
fallback: a laEDF scenario mixed into the batch quietly takes the
scalar path (`unsupported_reason` names why) and still matches.

Run:  PYTHONPATH=src python examples/vector_campaign.py

Set ``REPRO_EXAMPLE_SCALE=smoke`` to shrink the sweep (CI runs every
example that way).
"""

import os
import time

import numpy as np

from repro.campaign import ScenarioSpec
from repro.campaign.runner import _build_scenario_sim
from repro.sim import BatchItem, ScenarioBatch
from repro.sim.vector import unsupported_reason

SMOKE = os.environ.get("REPRO_EXAMPLE_SCALE") == "smoke"
N_SCENARIOS = 16 if SMOKE else 256
HYPERPERIODS = 2 if SMOKE else 4


def build_items():
    """Alternating EDF/ccEDF scenarios at the paper's operating point
    (fixed actuals at 60% of WCET keep the workload job-invariant —
    the vector engine's eligibility requirement)."""
    items = []
    for k in range(N_SCENARIOS):
        spec = ScenarioSpec(
            scheme="ccEDF" if k % 2 else "EDF",
            n_graphs=2,
            utilization=0.7,
            actual_low=0.6,
            actual_high=0.6,
            seed=k,
            on_miss="record",
        )
        sim, _ = _build_scenario_sim(spec)
        horizon = HYPERPERIODS * sim.task_set.hyperperiod()
        items.append(BatchItem(sim, horizon))
    return items


def main() -> None:
    print(f"sweep: {N_SCENARIOS} scenarios (EDF/ccEDF alternating), "
          f"{HYPERPERIODS} hyperperiods each\n")

    t0 = time.perf_counter()
    scalar = ScenarioBatch(build_items(), engine="scalar").run()
    t_scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    vector = ScenarioBatch(build_items(), engine="vector").run()
    t_vector = time.perf_counter() - t0

    print(f"scalar engine: {t_scalar:7.3f} s")
    print(f"vector engine: {t_vector:7.3f} s "
          f"({t_scalar / t_vector:.2f}x)\n")

    # Identical means identical: every trace column, byte for byte.
    for s, v in zip(scalar, vector):
        ts, tv = s.result.trace, v.result.trace
        assert len(ts) == len(tv)
        for col in ("starts", "durations", "speeds", "currents"):
            assert np.array_equal(getattr(ts, col), getattr(tv, col))
        assert s.result.misses == v.result.misses
    print(f"checked: all {N_SCENARIOS} scenario traces bit-identical\n")

    # The fallback contract: anything the engine cannot express in
    # array form runs through the scalar engine inside the same batch.
    laedf_sim, _ = _build_scenario_sim(
        ScenarioSpec(scheme="BAS-2", n_graphs=2, utilization=0.7,
                     actual_low=0.6, actual_high=0.6, seed=0)
    )
    horizon = HYPERPERIODS * laedf_sim.task_set.hyperperiod()
    reason = unsupported_reason(laedf_sim, horizon)
    print(f"BAS-2 scenario falls back per-scenario: {reason!r}")
    mixed = ScenarioBatch(
        build_items()[:2] + [BatchItem(laedf_sim, horizon)],
        engine="vector",
    ).run()
    solo = laedf_sim_fresh().run(horizon, fast=True)
    assert mixed[2].result.completed_jobs == solo.completed_jobs
    assert mixed[2].result.charge == solo.charge
    print("mixed batch: fallback scenario matches its solo run")


def laedf_sim_fresh():
    sim, _ = _build_scenario_sim(
        ScenarioSpec(scheme="BAS-2", n_graphs=2, utilization=0.7,
                     actual_low=0.6, actual_high=0.6, seed=0)
    )
    return sim


if __name__ == "__main__":
    main()

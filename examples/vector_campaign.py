#!/usr/bin/env python
"""The struct-of-arrays vector engine on a 256-scenario sweep.

A campaign of many small simulations is the repo's hot loop: Table 2
runs hundreds of scenarios per scheme.  This example times the same
five-scheme sweep through the two `ScenarioBatch` engines —

* ``engine="scalar"``: every scenario through its own
  ``Simulator.run(fast=True)`` event loop;
* ``engine="vector"``: all scenarios advanced lock-step as
  struct-of-arrays numpy state (`repro.sim.vector.VectorEngine`) —

then proves the point of the design: the outcomes are *bit-identical*,
the vector engine is just faster.  The whole Table 2 grid is eligible
— EDF through BAS-2, stochastic 20-100% actuals included — so the
sweep runs with zero fallbacks.  It also shows the per-scenario
fallback that remains for genuinely inexpressible scenarios: a
custom actuals provider quietly takes the scalar path
(`unsupported_reason` names why) and still matches.

Run:  PYTHONPATH=src python examples/vector_campaign.py

Set ``REPRO_EXAMPLE_SCALE=smoke`` to shrink the sweep (CI runs every
example that way).
"""

import os
import time

import numpy as np

from repro.campaign import ScenarioSpec
from repro.campaign.runner import _build_scenario_sim
from repro.sim import BatchItem, ScenarioBatch
from repro.sim.vector import unsupported_reason

SMOKE = os.environ.get("REPRO_EXAMPLE_SCALE") == "smoke"
N_SCENARIOS = 16 if SMOKE else 256
HYPERPERIODS = 2 if SMOKE else 4
SCHEMES = ("EDF", "ccEDF", "laEDF", "BAS-1", "BAS-2")


def build_items():
    """Round-robin over all five Table 2 schemes with the paper's
    stochastic 20-100% actuals (hash-keyed per job, so the vector
    engine can pre-draw them)."""
    items = []
    for k in range(N_SCENARIOS):
        spec = ScenarioSpec(
            scheme=SCHEMES[k % len(SCHEMES)],
            n_graphs=2,
            utilization=0.7,
            seed=k,
            on_miss="record",
        )
        sim, _ = _build_scenario_sim(spec)
        horizon = HYPERPERIODS * sim.task_set.hyperperiod()
        items.append(BatchItem(sim, horizon))
    return items


def main() -> None:
    print(f"sweep: {N_SCENARIOS} scenarios "
          f"({'/'.join(SCHEMES)} round-robin, stochastic actuals), "
          f"{HYPERPERIODS} hyperperiods each\n")

    # Eligibility first: every scheme row compiles to array form.
    for sim, horizon in ((i.simulator, i.horizon)
                         for i in build_items()[:len(SCHEMES)]):
        assert unsupported_reason(sim, horizon) is None
    print("eligibility: all five Table 2 schemes vectorize "
          "(zero fallbacks)\n")

    t0 = time.perf_counter()
    scalar = ScenarioBatch(build_items(), engine="scalar").run()
    t_scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    vector = ScenarioBatch(build_items(), engine="vector").run()
    t_vector = time.perf_counter() - t0

    print(f"scalar engine: {t_scalar:7.3f} s")
    print(f"vector engine: {t_vector:7.3f} s "
          f"({t_scalar / t_vector:.2f}x)\n")

    # Identical means identical: every trace column, byte for byte.
    for s, v in zip(scalar, vector):
        ts, tv = s.result.trace, v.result.trace
        assert len(ts) == len(tv)
        for col in ("starts", "durations", "speeds", "currents"):
            assert np.array_equal(getattr(ts, col), getattr(tv, col))
        assert s.result.misses == v.result.misses
    print(f"checked: all {N_SCENARIOS} scenario traces bit-identical\n")

    # The fallback contract: anything the engine cannot express in
    # array form runs through the scalar engine inside the same batch.
    # Pre-drawing actuals is only legal for providers that are pure in
    # (graph, node, job) — a call-order-dependent one must fall back.
    def odd_sim():
        class EveryOtherCall:
            def __init__(self):
                self.calls = 0

            def __call__(self, graph, node, job_index, wc):
                self.calls += 1
                return wc if self.calls % 2 else 0.5 * wc

        sim, _ = _build_scenario_sim(
            ScenarioSpec(scheme="BAS-2", n_graphs=2, utilization=0.7,
                         seed=0)
        )
        sim.actuals = EveryOtherCall()
        return sim

    horizon = HYPERPERIODS * odd_sim().task_set.hyperperiod()
    reason = unsupported_reason(odd_sim(), horizon)
    print(f"call-order-dependent provider falls back: {reason!r}")
    mixed = ScenarioBatch(
        build_items()[:2] + [BatchItem(odd_sim(), horizon)],
        engine="vector",
    ).run()
    solo = odd_sim().run(horizon, fast=True)
    assert mixed[2].result.completed_jobs == solo.completed_jobs
    assert mixed[2].result.charge == solo.charge
    print("mixed batch: fallback scenario matches its solo run")


if __name__ == "__main__":
    main()

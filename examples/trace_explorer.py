#!/usr/bin/env python
"""Trace explorer: watch the feasibility check reorder execution.

Reproduces the paper's Figure 5 walkthrough and renders both schedules
as ASCII timelines: canonical EDF on the left of time, and the
pUBS-preferred order guarded by the Algorithm 2 feasibility check.
Then it stress-tests the guard: the same greedy ordering *without* the
check starts missing deadlines once utilization climbs.

Run:  python examples/trace_explorer.py
"""

from repro import (
    CcEDF,
    LaEDF,
    PUBS,
    ALL_RELEASED,
    HistoryEstimator,
    SchedulingPolicy,
    Simulator,
    fig5,
    paper_processor,
    paper_task_set,
)
from repro.workloads import UniformActuals


def figure5() -> None:
    result = fig5()
    print("=" * 72)
    print("Figure 5 — the paper's own trace example (fref = 0.5 fmax)")
    print("=" * 72)
    print(result.format())


def guard_stress() -> None:
    print()
    print("=" * 72)
    print("Why the feasibility check exists (greedy order, U = 0.92,")
    print("actuals 60-100% of WCET)")
    print("=" * 72)
    proc = paper_processor()
    for guarded in (True, False):
        misses = 0
        for seed in range(6):
            task_set = paper_task_set(4, utilization=0.92, seed=seed)
            actuals = UniformActuals(low=0.6, high=1.0, seed=seed)
            sim = Simulator(
                task_set,
                proc,
                LaEDF(),
                SchedulingPolicy(
                    PUBS(HistoryEstimator()),
                    ALL_RELEASED,
                    enforce_feasibility=guarded,
                ),
                actuals=actuals,
                on_miss="record",
            )
            misses += len(sim.run(task_set.hyperperiod()).misses)
        label = "with feasibility check" if guarded else "without"
        print(f"  {label:24s} -> {misses} deadline misses over 6 sets")


def main() -> None:
    figure5()
    guard_stress()


if __name__ == "__main__":
    main()

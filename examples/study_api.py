#!/usr/bin/env python
"""The repro.api Study layer in 60 seconds.

Declare a sweep (axes over spec fields, including a conditional
estimator axis that only exists for estimate-driven schemes), run it
once, then slice the typed result frame: grouped means, confidence
intervals, a pivot, CSV.  Finally, register a custom scheme through
the declarative plugin registry and sweep it next to the paper's —
plugins registered this way also work on spawn-started pools and
distributed worker fleets.

Run:  PYTHONPATH=src python examples/study_api.py
"""

from repro.api import Condition, Study, StudyPlan, Sweep


def main() -> None:
    plan = StudyPlan(
        name="utilization-sweep",
        description="lifetime vs utilization per scheme",
        sweep=(
            Sweep("scenario", n_graphs=3, battery="stochastic")
            .grid(_rep=list(range(3)))
            .grid(scheme=["ccEDF", "laEDF", "BAS-2"])
            .grid(utilization=[0.5, 0.7])
            .conditional(
                "estimator",
                ["history"],
                when=Condition.one_of("scheme", ["laEDF", "BAS-2"]),
            )
            .seed(mode="offset", root=0, terms={"_rep": 1},
                  also=("battery_seed",))
        ),
        group_by=("scheme", "utilization"),
        metrics=("lifetime_min", "delivered_mah"),
    )
    result = Study(plan, workers=2).run()

    print(result.format())
    print()
    ci = result.frame.mean_ci("lifetime_min", by=("scheme",))
    print(ci.format(precision=4))
    print()
    pivot = result.frame.pivot("scheme", "utilization", "lifetime_min")
    print(pivot.format(precision=1))
    print()
    print(f"telemetry: {result.campaign.telemetry}")

    print("\nplan as JSON (run it: python -m repro study run plan.json):")
    plan.save("/tmp/utilization-sweep.json")
    print("  wrote /tmp/utilization-sweep.json")


if __name__ == "__main__":
    main()
